// Command dvmbench records the repository's performance trajectory: it
// regenerates every paper artifact at a profile (end-to-end wall per
// artifact) and runs a fixed set of micro-benchmarks (ns/op, allocs/op)
// through testing.Benchmark, then writes the measurements to a JSON file
// (BENCH_tiny.json at the repository root is the committed trajectory).
//
// Usage:
//
//	dvmbench [-profile tiny] -o BENCH_tiny.json            # measure, write
//	dvmbench [-profile tiny] -o BENCH_tiny.json -as-baseline
//	dvmbench [-profile tiny] -against BENCH_tiny.json      # CI regression gate
//	dvmbench -profile large -only fig8 -graph-cache /tmp/g -o BENCH_large.json
//
// Every artifact is measured for wall time AND peak resident set (the
// kernel's VmHWM watermark, reset per artifact via /proc/self/clear_refs
// where supported); the heaviest artifact's watermark is the sweep's
// peak_rss_bytes, gated by -against at the same 20% tolerance as the
// alloc counts. -only restricts the sweep to a comma-separated artifact
// subset and skips the micro-benchmarks (footprint runs); -graph-cache
// mmaps on-disk CSR graphs instead of holding private copies, and is
// recorded in the measurement so footprints gate like against like.
//
// The output file holds two sections: "baseline" (the numbers recorded
// before the PR-3 hot-path pass, frozen) and "current" (refreshed by -o).
// Writing with -o preserves an existing file's baseline section so the
// speedup ratio stays auditable; -as-baseline rewrites the baseline
// instead (used once per optimisation epoch). A "speedup" section is
// recomputed on every write as baseline/current.
//
// -against measures the working tree and compares it to the file's
// "current" section, the committed performance contract:
//
//   - allocs/op compare machine-independently: the gate fails when a
//     benchmark allocates more than max(1.2*committed, committed+2)
//     objects per op. The +2 grace keeps near-zero-allocation benchmarks
//     from failing on one incidental allocation; the 20% headroom keeps
//     the gate from tracking noise on alloc-heavy paths.
//   - ns/op compares only after normalizing both runs by their own
//     end-to-end artifact wall (ratio of ratios), so an absolutely slower
//     CI machine does not fail the gate, but a benchmark that regressed
//     relative to the rest of the suite by >20% does.
//
// The tolerances are deliberately loose: the gate exists to catch a
// hot path accidentally reverting to a slow path (2x regressions), not
// to police single-digit drift.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/dvm-sim/dvm/internal/addr"
	"github.com/dvm-sim/dvm/internal/core"
	"github.com/dvm-sim/dvm/internal/graph"
	"github.com/dvm-sim/dvm/internal/memsys"
	"github.com/dvm-sim/dvm/internal/obs"
	"github.com/dvm-sim/dvm/internal/report"
	"github.com/dvm-sim/dvm/internal/runner"
)

// Measurement is one recorded run of the suite.
type Measurement struct {
	// Label identifies the code state measured (e.g. a commit subject).
	Label string `json:"label,omitempty"`
	// GoVersion, NumCPU and GOMAXPROCS record the measuring environment;
	// Jobs is the resolved -j the artifact timings ran at. Together they
	// say how much parallelism a recorded wall could have benefited from,
	// which is what makes cross-machine comparisons of EndToEndSeconds
	// auditable.
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Jobs       int    `json:"jobs"`
	// GraphCache records whether the artifact sweep ran with the on-disk
	// mmap'd graph cache (-graph-cache); footprint numbers are only
	// comparable between runs with the same backing.
	GraphCache bool `json:"graph_cache,omitempty"`
	// ArtifactsSeconds is the wall per artifact at -j Jobs.
	ArtifactsSeconds map[string]float64 `json:"artifacts_seconds"`
	// ArtifactsPeakRSSBytes is the kernel peak-RSS watermark (VmHWM) per
	// artifact, reset via /proc/self/clear_refs before each one. On
	// kernels without watermark reset the values are the monotone
	// process-lifetime peak (over-reporting, never under).
	ArtifactsPeakRSSBytes map[string]uint64 `json:"artifacts_peak_rss_bytes,omitempty"`
	// PeakRSSBytes is the heaviest artifact's watermark — the sweep's
	// resident-footprint headline.
	PeakRSSBytes uint64 `json:"peak_rss_bytes,omitempty"`
	// HeapHighWaterBytes is runtime HeapSys after the artifact sweep:
	// the Go heap's high-water mark as obtained from the OS.
	HeapHighWaterBytes uint64 `json:"heap_high_water_bytes,omitempty"`
	// EndToEndSeconds is the wall of regenerating every artifact, the
	// headline "full dvmrepro regeneration" number.
	EndToEndSeconds float64 `json:"end_to_end_seconds"`
	// Benchmarks holds the micro-benchmark results by name.
	Benchmarks map[string]BenchResult `json:"benchmarks"`
}

// BenchResult is one micro-benchmark's outcome.
type BenchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// P99WalkMemRefs is the p99 of the per-translation walk-memref
	// distribution of the benchmark's last run (run/* benchmarks only;
	// 0 for modes that walk nothing). Simulated-time data: recorded for
	// trend visibility, not gated — the gate ignores unknown fields.
	P99WalkMemRefs uint64 `json:"p99_walk_memrefs,omitempty"`
}

// File is the committed trajectory format.
type File struct {
	Schema  string `json:"schema"`
	Profile string `json:"profile"`
	// Baseline is frozen at the start of an optimisation epoch;
	// Current is refreshed by every -o run.
	Baseline *Measurement `json:"baseline,omitempty"`
	Current  *Measurement `json:"current,omitempty"`
	// Speedup is Baseline/Current, recomputed on write.
	Speedup *Speedup `json:"speedup,omitempty"`
}

// Speedup summarizes baseline/current ratios (>1 means faster now).
type Speedup struct {
	EndToEnd  float64            `json:"end_to_end"`
	Artifacts map[string]float64 `json:"artifacts"`
}

func main() {
	profileName := flag.String("profile", "tiny", "experiment profile to measure ("+strings.Join(core.ProfileNames(), "|")+")")
	out := flag.String("o", "", "write/refresh this trajectory file's current section")
	asBaseline := flag.Bool("as-baseline", false, "with -o: write the baseline section instead of current")
	against := flag.String("against", "", "measure and gate against this file's current section (CI)")
	jobs := flag.Int("j", 1, "worker processes for artifact timings (default 1: sequential, comparable across files)")
	label := flag.String("label", "", "label recorded with the measurement")
	only := flag.String("only", "", "comma-separated artifact subset to measure (skips the micro-benchmarks; for footprint-focused files like BENCH_large.json)")
	graphCache := flag.String("graph-cache", "", "directory for the on-disk CSR graph cache (mmap'd graphs; recorded in the measurement)")
	quiet := flag.Bool("q", false, "suppress progress output")
	httpAddr := flag.String("http", "", "serve the live observability surface (/metrics, /progress, /debug/pprof/) on this address")
	flag.StringVar(httpAddr, "pprof", "", "deprecated alias of -http")
	flag.Parse()

	lg := obs.NewLogger(os.Stderr, "dvmbench", *quiet)
	coll := &obs.Collector{}
	board := &runner.ProgressBoard{}
	var httpSrv *obs.Server
	if *httpAddr != "" {
		var err error
		httpSrv, err = obs.StartHTTP(*httpAddr, lg, obs.HTTPOptions{
			Metrics:  coll.Snapshot,
			Volatile: coll.VolatileSnapshot,
			Progress: board.Probe(),
		})
		if err != nil {
			lg.Exitf(2, "%v", err)
		}
	}
	// Drain the -http listener on every return path so an in-flight
	// scrape finishes instead of seeing a connection reset. Exitf paths
	// bypass this deliberately: they are error aborts, not shutdowns.
	defer httpSrv.Shutdown(2 * time.Second)
	if (*out == "") == (*against == "") {
		lg.Exitf(2, "exactly one of -o or -against is required")
	}
	prof, err := core.ProfileByName(*profileName)
	if err != nil {
		lg.Exitf(2, "%v", err)
	}

	var wanted map[string]bool
	if *only != "" {
		wanted = map[string]bool{}
		keys := artifactKeys(prof)
		known := map[string]bool{}
		for _, k := range keys {
			known[k] = true
		}
		var unknown []string
		for _, k := range strings.Split(*only, ",") {
			k = strings.TrimSpace(k)
			if k == "" {
				continue
			}
			if !known[k] {
				unknown = append(unknown, k)
				continue
			}
			wanted[k] = true
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			lg.Exitf(2, "unknown artifact key(s) %s; valid keys: %s",
				strings.Join(unknown, ", "), strings.Join(keys, ", "))
		}
		if len(wanted) == 0 {
			lg.Exitf(2, "-only selected nothing; valid keys: %s", strings.Join(keys, ", "))
		}
	}
	prepared := core.NewPreparedCache()
	if *graphCache != "" {
		if err := os.MkdirAll(*graphCache, 0o777); err != nil {
			lg.Exitf(2, "-graph-cache: %v", err)
		}
		prepared = core.NewPreparedCacheDir(*graphCache)
	}
	defer prepared.Close()

	// Ctrl-C cancels the measurement sweep; nothing is written (a
	// partial trajectory would poison later comparisons), so the
	// committed file is only ever replaced atomically and completely.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m, err := measure(ctx, prof, *label, *jobs, wanted, prepared, lg, coll, board)
	if m != nil {
		m.GraphCache = *graphCache != ""
	}
	if err != nil {
		if ctx.Err() != nil {
			lg.Statusf("interrupted; no file written")
			httpSrv.Shutdown(2 * time.Second) // os.Exit skips the deferred drain
			os.Exit(130)
		}
		lg.Exitf(1, "%v", err)
	}

	if *against != "" {
		committed, err := load(*against)
		if err != nil {
			lg.Exitf(1, "%v", err)
		}
		if committed.Current == nil {
			lg.Exitf(1, "%s has no current section to gate against", *against)
		}
		if errs := gate(committed.Current, m); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "dvmbench: REGRESSION: %v\n", e)
			}
			lg.Exitf(1, "%d benchmark regression(s) against %s (see above; refresh with `go run ./cmd/dvmbench -profile %s -o %s` if intentional)",
				len(errs), *against, prof.Name, *against)
		}
		lg.Statusf("no regressions against %s (%d benchmarks, %d artifacts)", *against, len(m.Benchmarks), len(m.ArtifactsSeconds))
		return
	}

	f := &File{Schema: "dvm-bench/1", Profile: prof.Name}
	if prev, err := load(*out); err == nil {
		*f = *prev
	} else if !os.IsNotExist(err) {
		lg.Exitf(1, "%v", err)
	}
	if *asBaseline {
		f.Baseline = m
	} else {
		f.Current = m
	}
	f.Speedup = speedup(f.Baseline, f.Current)
	if err := write(*out, f); err != nil {
		lg.Exitf(1, "%v", err)
	}
	if f.Speedup != nil {
		lg.Statusf("end-to-end %s regeneration: baseline %.2fs -> current %.2fs (%.2fx)",
			prof.Name, f.Baseline.EndToEndSeconds, f.Current.EndToEndSeconds, f.Speedup.EndToEnd)
	}
	lg.Statusf("wrote %s", *out)
}

// artifactKeys is the -only vocabulary, in rendering order.
func artifactKeys(prof core.Profile) []string {
	var keys []string
	for _, a := range artifacts(prof, report.Options{}) {
		keys = append(keys, a.key)
	}
	return keys
}

// artifacts maps artifact keys to their generators, in dvmrepro's
// rendering order. Table 5 is static text and is not timed.
func artifacts(prof core.Profile, opts report.Options) []struct {
	key string
	fn  func(io.Writer) error
} {
	return []struct {
		key string
		fn  func(io.Writer) error
	}{
		{"table3", func(w io.Writer) error { return report.Table3(prof, w, opts) }},
		{"fig2", func(w io.Writer) error { return report.Figure2(prof, w, opts) }},
		{"table1", func(w io.Writer) error { return report.Table1(prof, w, opts) }},
		{"fig8", func(w io.Writer) error { return report.Figure8And9(prof, w, opts) }},
		{"table4", func(w io.Writer) error { return report.Table4(w, opts) }},
		{"fig10", func(w io.Writer) error { return report.Figure10(w, opts) }},
		{"ablations", func(w io.Writer) error { return report.Ablations(prof, w, opts) }},
		{"virt", func(w io.Writer) error { return report.Virtualization(w, opts) }},
	}
}

// measure runs the suite: every artifact end-to-end at -j jobs (default
// 1: stable, comparable across runs and against committed files), then
// the micro-benchmarks (always sequential). A non-nil wanted set
// restricts the artifacts and skips the micro-benchmarks entirely (a
// footprint run, not a full trajectory).
func measure(ctx context.Context, prof core.Profile, label string, jobs int, wanted map[string]bool, prepared *core.PreparedCache, lg *obs.Logger, coll *obs.Collector, board *runner.ProgressBoard) (*Measurement, error) {
	jobs = runner.DefaultJobs(jobs)
	m := &Measurement{
		Label:            label,
		GoVersion:        runtime.Version(),
		NumCPU:           runtime.NumCPU(),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Jobs:             jobs,
		ArtifactsSeconds: map[string]float64{},
		Benchmarks:       map[string]BenchResult{},
	}
	opts := report.Options{
		Ctx:      ctx,
		Jobs:     jobs,
		Workers:  runner.BudgetFor(jobs),
		Metrics:  coll,
		Board:    board,
		Prepared: prepared,
	}
	canReset := resetPeakRSS()
	if !canReset {
		lg.Statusf("peak-RSS watermark reset unsupported; per-artifact RSS is the process-lifetime peak")
	}
	for _, a := range artifacts(prof, opts) {
		if wanted != nil && !wanted[a.key] {
			continue
		}
		resetPeakRSS()
		start := time.Now()
		if err := a.fn(io.Discard); err != nil {
			return nil, fmt.Errorf("dvmbench: %s: %w", a.key, err)
		}
		wall := time.Since(start).Seconds()
		m.ArtifactsSeconds[a.key] = wall
		m.EndToEndSeconds += wall
		rss := peakRSSBytes()
		if rss > 0 {
			if m.ArtifactsPeakRSSBytes == nil {
				m.ArtifactsPeakRSSBytes = map[string]uint64{}
			}
			m.ArtifactsPeakRSSBytes[a.key] = rss
			if rss > m.PeakRSSBytes {
				m.PeakRSSBytes = rss
			}
		}
		lg.Statusf("artifact %s: %.2fs peak RSS %d MiB", a.key, wall, rss>>20)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.HeapHighWaterBytes = ms.HeapSys
	if wanted != nil {
		return m, nil
	}
	for _, b := range microBenches(prof) {
		r := testing.Benchmark(b.fn)
		br := BenchResult{NsPerOp: float64(r.T.Nanoseconds()) / float64(r.N), AllocsPerOp: r.AllocsPerOp()}
		if b.p99 != nil {
			br.P99WalkMemRefs = b.p99()
		}
		m.Benchmarks[b.name] = br
		lg.Statusf("bench %s: %.0f ns/op %d allocs/op", b.name, br.NsPerOp, br.AllocsPerOp)
	}
	return m, nil
}

// microBench is one tracked micro-benchmark; p99, when non-nil, reports
// the p99 walk-memrefs of the benchmark's most recent run after fn has
// executed (recorded into the trajectory file, not gated).
type microBench struct {
	name string
	fn   func(b *testing.B)
	p99  func() uint64
}

// microBenches is the tracked micro-benchmark suite. Names are stable:
// the CI gate joins on them.
func microBenches(prof core.Profile) []microBench {
	cfg := prof.SystemConfig()
	var prep *core.Prepared
	prepare := func(b *testing.B) *core.Prepared {
		if prep == nil {
			d, err := graph.DatasetByName("Wiki")
			if err != nil {
				b.Fatal(err)
			}
			prep, err = core.Prepare(core.Workload{
				Algorithm: "PageRank", Dataset: d, Scale: prof.Scale,
				PageRankIters: prof.PageRankIters, Seed: 42,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		return prep
	}
	perMode := func(name string, mode core.Mode) microBench {
		var last core.RunResult
		return microBench{
			name: name,
			fn: func(b *testing.B) {
				p := prepare(b)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r, err := p.Run(mode, cfg)
					if err != nil {
						b.Fatal(err)
					}
					last = r
				}
			},
			p99: func() uint64 { return p99WalkMemRefs(last) },
		}
	}
	// multiMode times a whole Figure 8 mode sweep on one prepared
	// workload — the replay-group layer's unit of work. The shared and
	// independent variants produce byte-identical results (enforced by
	// TestSharedSweepMatchesIndependent); their ns/op ratio is the
	// measured value of trace sharing at this profile. Sequential
	// (nil Workers → phase lockstep), so the ratio is the single-core
	// generation dedup, comparable across machines.
	multiMode := func(name string, share core.ShareMode) microBench {
		return microBench{
			name: name,
			fn: func(b *testing.B) {
				p := prepare(b)
				c := cfg
				c.ShareTraces = share
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := p.RunModesShared(context.Background(), core.AllModes, c, 1); err != nil {
						b.Fatal(err)
					}
				}
			},
		}
	}
	return []microBench{
		perMode("run/conv4k", core.ModeConv4K),
		perMode("run/dvm-bm", core.ModeDVMBM),
		perMode("run/dvm-pe", core.ModeDVMPE),
		perMode("run/dvm-pe+", core.ModeDVMPEPlus),
		perMode("run/ideal", core.ModeIdeal),
		perMode("run/sparta", core.ModeSPARTA),
		perMode("run/vbi", core.ModeVBI),
		multiMode("fig8/shared", core.ShareAuto),
		multiMode("fig8/independent", core.ShareOff),
		{name: "prepare", fn: func(b *testing.B) {
			d, err := graph.DatasetByName("Wiki")
			if err != nil {
				b.Fatal(err)
			}
			wl := core.Workload{
				Algorithm: "PageRank", Dataset: d, Scale: prof.Scale,
				PageRankIters: prof.PageRankIters, Seed: 42,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Prepare(wl); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{name: "memsys/access", fn: func(b *testing.B) {
			ctl := memsys.MustNewController(memsys.Config{})
			b.ReportAllocs()
			b.ResetTimer()
			var now uint64
			for i := 0; i < b.N; i++ {
				now = ctl.Access(addr.PA(uint64(i)<<6), now)
			}
		}},
	}
}

// p99WalkMemRefs pulls the p99 of the mode's walk-memref distribution
// out of a run's metrics snapshot (0 when the mode walks nothing, e.g.
// Ideal).
func p99WalkMemRefs(r core.RunResult) uint64 {
	for name, h := range r.Metrics.Hists {
		if strings.HasSuffix(name, ".walk.memrefs") {
			return h.P99
		}
	}
	return 0
}

// gate compares a fresh measurement against the committed contract.
// See the package comment for the exact tolerances and why.
func gate(committed, fresh *Measurement) []error {
	var errs []error
	names := make([]string, 0, len(committed.Benchmarks))
	for name := range committed.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	// Footprint gate: the artifact sweep is deterministic at a profile,
	// so peak RSS compares across machines (unlike wall time); a >20%
	// growth in the heaviest artifact's resident set fails. Only applies
	// when both runs measured RSS with the same graph backing.
	if committed.PeakRSSBytes > 0 && fresh.PeakRSSBytes > 0 && committed.GraphCache == fresh.GraphCache {
		if limit := committed.PeakRSSBytes + committed.PeakRSSBytes/5; fresh.PeakRSSBytes > limit {
			errs = append(errs, fmt.Errorf("peak RSS: %d MiB, committed %d MiB (limit %d MiB)",
				fresh.PeakRSSBytes>>20, committed.PeakRSSBytes>>20, limit>>20))
		}
	}
	for _, name := range names {
		base := committed.Benchmarks[name]
		cur, ok := fresh.Benchmarks[name]
		if !ok {
			errs = append(errs, fmt.Errorf("%s: tracked benchmark missing from this run", name))
			continue
		}
		// Alloc gate: machine-independent.
		if limit := maxI(int64(float64(base.AllocsPerOp)*1.2), base.AllocsPerOp+2); cur.AllocsPerOp > limit {
			errs = append(errs, fmt.Errorf("%s: %d allocs/op, committed %d (limit %d)",
				name, cur.AllocsPerOp, base.AllocsPerOp, limit))
		}
		// Time gate: normalize each run's ns/op by its own end-to-end
		// wall so machine speed cancels; >20% relative regression fails.
		if committed.EndToEndSeconds > 0 && fresh.EndToEndSeconds > 0 && base.NsPerOp > 0 {
			rel := (cur.NsPerOp / fresh.EndToEndSeconds) / (base.NsPerOp / committed.EndToEndSeconds)
			if rel > 1.2 {
				errs = append(errs, fmt.Errorf("%s: %.0f ns/op is %.2fx the committed share of the end-to-end wall (limit 1.20x)",
					name, cur.NsPerOp, rel))
			}
		}
	}
	return errs
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func speedup(base, cur *Measurement) *Speedup {
	if base == nil || cur == nil || cur.EndToEndSeconds == 0 {
		return nil
	}
	s := &Speedup{Artifacts: map[string]float64{}}
	s.EndToEnd = base.EndToEndSeconds / cur.EndToEndSeconds
	for k, b := range base.ArtifactsSeconds {
		if c := cur.ArtifactsSeconds[k]; c > 0 {
			s.Artifacts[k] = b / c
		}
	}
	return s
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("dvmbench: parsing %s: %w", path, err)
	}
	return &f, nil
}

// write replaces the trajectory file atomically (temp file + rename in
// the same directory), so an interrupt mid-write can never leave a
// truncated JSON file behind for the CI gate to choke on.
func write(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
