// Command tlbstats regenerates Figure 2 (TLB miss rates of the graph
// workloads with 4 KB and 2 MB pages) and optionally sweeps the TLB size.
//
// Usage:
//
//	tlbstats [-profile small] [-j N] [-sweep] [-alg PageRank -dataset Wiki]
//	         [-metrics file] [-http addr] [-q]
//
// -metrics writes the merged registry snapshot (counters and histograms)
// of the Figure 2 runs as JSON (byte-identical at any -j); -http serves
// the live observability surface (/metrics in Prometheus exposition
// format, /progress, /debug/pprof/; -pprof is the deprecated alias).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/dvm-sim/dvm/internal/core"
	"github.com/dvm-sim/dvm/internal/graph"
	"github.com/dvm-sim/dvm/internal/obs"
	"github.com/dvm-sim/dvm/internal/report"
	"github.com/dvm-sim/dvm/internal/results"
	"github.com/dvm-sim/dvm/internal/runner"
)

func main() {
	profileName := flag.String("profile", "small", "experiment profile: "+strings.Join(core.ProfileNames(), "|"))
	sweep := flag.Bool("sweep", false, "sweep TLB sizes for one workload instead of printing Figure 2")
	alg := flag.String("alg", "PageRank", "algorithm for -sweep")
	dataset := flag.String("dataset", "Wiki", "dataset for -sweep")
	jobs := flag.Int("j", 0, "max concurrent experiment cells (0 = one per CPU, 1 = sequential)")
	quiet := flag.Bool("q", false, "suppress status output")
	metricsPath := flag.String("metrics", "", "write the merged metrics-registry snapshot as JSON to this file")
	httpAddr := flag.String("http", "", "serve the live observability surface (/metrics, /progress, /debug/pprof/) on this address (e.g. localhost:6060)")
	flag.StringVar(httpAddr, "pprof", "", "deprecated alias of -http")
	flag.Parse()

	lg := obs.NewLogger(os.Stderr, "tlbstats", *quiet)
	coll := &obs.Collector{}
	board := &runner.ProgressBoard{}
	var httpSrv *obs.Server
	if *httpAddr != "" {
		var err error
		httpSrv, err = obs.StartHTTP(*httpAddr, lg, obs.HTTPOptions{
			Metrics:  coll.Snapshot,
			Volatile: coll.VolatileSnapshot,
			Progress: board.Probe(),
		})
		if err != nil {
			lg.Exitf(2, "%v", err)
		}
	}
	// Drain the -http listener on the way out so an in-flight scrape
	// finishes instead of seeing a connection reset.
	defer httpSrv.Shutdown(2 * time.Second)

	prof, err := core.ProfileByName(*profileName)
	if err != nil {
		lg.Exitf(2, "%v", err)
	}
	if !*sweep {
		opts := report.Options{Jobs: *jobs, Metrics: coll, Workers: runner.BudgetFor(*jobs)}
		if !lg.Quiet() {
			opts.Progress = lg.Statusf
		}
		if *httpAddr != "" {
			opts.Board = board
		}
		if err := report.Figure2(prof, os.Stdout, opts); err != nil {
			lg.Exitf(1, "%v", err)
		}
		writeMetrics(lg, *metricsPath, coll)
		return
	}
	d, err := graph.DatasetByName(*dataset)
	if err != nil {
		lg.Exitf(2, "%v", err)
	}
	p, err := core.Prepare(core.Workload{
		Algorithm: *alg, Dataset: d, Scale: prof.Scale,
		PageRankIters: prof.PageRankIters, Seed: 42,
	})
	if err != nil {
		lg.Exitf(1, "%v", err)
	}
	sizes := []int{2, 4, 8, 16, 32, 64, 128, 256}
	rates, err := core.TLBMissRateVsSizeCtx(context.Background(), p, prof.SystemConfig(), sizes, *jobs)
	if err != nil {
		lg.Exitf(1, "%v", err)
	}
	t := results.NewTable(fmt.Sprintf("TLB size sweep: %s/%s at 4 KB pages (profile %s)", *alg, *dataset, prof.Name),
		"TLB entries", "Miss rate")
	keys := make([]int, 0, len(rates))
	for k := range rates {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		t.MustAddRow(fmt.Sprintf("%d", k), results.Pct(rates[k]))
	}
	if err := t.WriteASCII(os.Stdout); err != nil {
		lg.Exitf(1, "%v", err)
	}
	writeMetrics(lg, *metricsPath, coll)
}

// writeMetrics exports the collected snapshot when -metrics was given.
func writeMetrics(lg *obs.Logger, path string, coll *obs.Collector) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		lg.Exitf(1, "%v", err)
	}
	if err := coll.Snapshot().WriteJSON(f); err != nil {
		lg.Exitf(1, "%v", err)
	}
	if err := f.Close(); err != nil {
		lg.Exitf(1, "%v", err)
	}
	lg.Statusf("metrics written to %s", path)
}
