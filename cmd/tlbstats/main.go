// Command tlbstats regenerates Figure 2 (TLB miss rates of the graph
// workloads with 4 KB and 2 MB pages) and optionally sweeps the TLB size.
//
// Usage:
//
//	tlbstats [-profile small] [-j N] [-sweep] [-alg PageRank -dataset Wiki]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/dvm-sim/dvm/internal/core"
	"github.com/dvm-sim/dvm/internal/graph"
	"github.com/dvm-sim/dvm/internal/report"
	"github.com/dvm-sim/dvm/internal/results"
)

func main() {
	profileName := flag.String("profile", "small", "experiment profile: tiny|small|medium|paper")
	sweep := flag.Bool("sweep", false, "sweep TLB sizes for one workload instead of printing Figure 2")
	alg := flag.String("alg", "PageRank", "algorithm for -sweep")
	dataset := flag.String("dataset", "Wiki", "dataset for -sweep")
	jobs := flag.Int("j", 0, "max concurrent experiment cells (0 = one per CPU, 1 = sequential)")
	flag.Parse()

	prof, err := core.ProfileByName(*profileName)
	if err != nil {
		fatal(err)
	}
	if !*sweep {
		if err := report.Figure2(prof, os.Stdout, report.Options{Jobs: *jobs}); err != nil {
			fatal(err)
		}
		return
	}
	d, err := graph.DatasetByName(*dataset)
	if err != nil {
		fatal(err)
	}
	p, err := core.Prepare(core.Workload{
		Algorithm: *alg, Dataset: d, Scale: prof.Scale,
		PageRankIters: prof.PageRankIters, Seed: 42,
	})
	if err != nil {
		fatal(err)
	}
	sizes := []int{2, 4, 8, 16, 32, 64, 128, 256}
	rates, err := core.TLBMissRateVsSizeCtx(context.Background(), p, prof.SystemConfig(), sizes, *jobs)
	if err != nil {
		fatal(err)
	}
	t := results.NewTable(fmt.Sprintf("TLB size sweep: %s/%s at 4 KB pages (profile %s)", *alg, *dataset, prof.Name),
		"TLB entries", "Miss rate")
	keys := make([]int, 0, len(rates))
	for k := range rates {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		t.MustAddRow(fmt.Sprintf("%d", k), results.Pct(rates[k]))
	}
	if err := t.WriteASCII(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
