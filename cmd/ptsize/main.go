// Command ptsize regenerates Table 1: page-table sizes with and without
// Permission Entries for the PageRank and CF workloads.
//
// Usage:
//
//	ptsize [-profile small] [-j N]
package main

import (
	"flag"
	"os"
	"strings"

	"github.com/dvm-sim/dvm/internal/core"
	"github.com/dvm-sim/dvm/internal/obs"
	"github.com/dvm-sim/dvm/internal/report"
	"github.com/dvm-sim/dvm/internal/runner"
)

func main() {
	profileName := flag.String("profile", "small", "experiment profile: "+strings.Join(core.ProfileNames(), "|"))
	jobs := flag.Int("j", 0, "max concurrent experiment cells (0 = one per CPU, 1 = sequential)")
	quiet := flag.Bool("q", false, "suppress status output")
	flag.Parse()
	lg := obs.NewLogger(os.Stderr, "ptsize", *quiet)
	prof, err := core.ProfileByName(*profileName)
	if err != nil {
		lg.Exitf(2, "%v", err)
	}
	opts := report.Options{Jobs: *jobs, Workers: runner.BudgetFor(*jobs)}
	if !lg.Quiet() {
		opts.Progress = lg.Statusf
	}
	if err := report.Table1(prof, os.Stdout, opts); err != nil {
		lg.Exitf(1, "%v", err)
	}
}
