// Command ptsize regenerates Table 1: page-table sizes with and without
// Permission Entries for the PageRank and CF workloads.
//
// Usage:
//
//	ptsize [-profile small]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/dvm-sim/dvm/internal/core"
	"github.com/dvm-sim/dvm/internal/report"
)

func main() {
	profileName := flag.String("profile", "small", "experiment profile: tiny|small|medium|paper")
	flag.Parse()
	prof, err := core.ProfileByName(*profileName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := report.Table1(prof, os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
