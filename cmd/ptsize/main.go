// Command ptsize regenerates Table 1: page-table sizes with and without
// Permission Entries for the PageRank and CF workloads.
//
// Usage:
//
//	ptsize [-profile small] [-j N]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/dvm-sim/dvm/internal/core"
	"github.com/dvm-sim/dvm/internal/report"
)

func main() {
	profileName := flag.String("profile", "small", "experiment profile: tiny|small|medium|paper")
	jobs := flag.Int("j", 0, "max concurrent experiment cells (0 = one per CPU, 1 = sequential)")
	flag.Parse()
	prof, err := core.ProfileByName(*profileName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := report.Table1(prof, os.Stdout, report.Options{Jobs: *jobs}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
