// Command dvmrepro regenerates the tables and figures of "Devirtualizing
// Memory in Heterogeneous Systems" (ASPLOS'18) from the simulation in this
// repository.
//
// Usage:
//
//	dvmrepro [-profile tiny|small|medium|large|paper] [-j N] [-modes paper|extended]
//	         [-only fig2,table1,table3,fig8,fig9,table4,fig10,table5,ablations,virt]
//	         [-checkpoint file [-resume]] [-shard k/n] [-graph-cache dir]
//	         [-chaos-rate p -chaos-seed N]
//	         [-metrics file] [-trace file] [-trace-mask comps]
//	         [-http addr] [-spans file] [-q]
//	dvmrepro -merge-shards out.ckpt shard0.ckpt shard1.ckpt ...
//
// With no -only flag every artifact is regenerated in paper order. Output
// goes to stdout; progress lines go to stderr unless -q is set. The
// evaluation matrix is embarrassingly parallel: -j bounds how many
// experiment cells run concurrently (default: one per CPU), and every
// rendered table is byte-identical at any -j (-j 1 reproduces the
// sequential sweep exactly).
//
// Resilience: -checkpoint persists every completed experiment cell to a
// JSONL file; Ctrl-C (or SIGTERM) cancels the sweep cleanly, flushes the
// checkpoint plus a partial -metrics snapshot, and exits 130. Rerunning
// with -resume skips the finished cells and renders final tables
// byte-identical to an uninterrupted run.
//
// Distribution: -shard k/n runs only the experiment cells whose global
// index i satisfies i%n == k, writing them to a -checkpoint namespaced
// with the shard (tables are suppressed — a shard's rows are partial).
// N shard checkpoints merge with -merge-shards into one plain checkpoint;
// rendering it with -checkpoint merged -resume produces tables and
// -metrics byte-identical to a single-box run. -graph-cache dir builds
// each (dataset, scale, seed) graph once as an on-disk CSR file and
// mmaps it read-only, so a fleet of shards (or a second run) shares
// page-cache pages instead of regenerating and holding private copies.
//
// Chaos: -chaos-rate arms deterministic
// seeded fault injection (allocation failures, corrupted PTEs, truncated
// walks, bad PE permissions, memory latency spikes) in every simulation;
// -chaos-seed fixes the fault schedule, so two runs with the same seed
// report identical chaos.* counters and identical typed errors.
//
// Observability: -metrics writes the merged per-run registry snapshot
// (counters and latency histograms) as JSON (byte-identical at any -j —
// snapshots merge by commutative sum); -trace writes a JSONL event trace
// bounded by -trace-cap, filtered to the -trace-mask components; -spans
// writes the sweep's phase spans (prepare, page-table builds, cells,
// trace generation, timing replay) as Chrome trace-event JSON loadable
// in ui.perfetto.dev; -http serves the live surface — net/http/pprof
// under /debug/pprof/, the merged metrics in Prometheus text exposition
// format at /metrics, and the sweep progress as JSON at /progress
// (-pprof is the deprecated alias of -http).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"github.com/dvm-sim/dvm/internal/chaos"
	"github.com/dvm-sim/dvm/internal/core"
	"github.com/dvm-sim/dvm/internal/obs"
	"github.com/dvm-sim/dvm/internal/report"
	"github.com/dvm-sim/dvm/internal/runner"
)

// artifactKeys is the -only vocabulary, in paper rendering order.
var artifactKeys = report.ArtifactKeys

func main() {
	profileName := flag.String("profile", "small", "experiment profile: "+strings.Join(core.ProfileNames(), "|")+" (see DESIGN.md §6)")
	only := flag.String("only", "", "comma-separated subset: "+strings.Join(artifactKeys, ","))
	modesName := flag.String("modes", "paper", "mode set for the fig8/fig9 matrix: paper (the seven paper columns, the byte-stable artifact) or extended (paper + SPARTA + VBI columns)")
	jobs := flag.Int("j", 0, "max concurrent experiment cells (0 = one per CPU, 1 = sequential)")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.BoolVar(quiet, "q", false, "shorthand for -quiet")
	metricsPath := flag.String("metrics", "", "write the merged metrics-registry snapshot as JSON to this file")
	tracePath := flag.String("trace", "", "write a JSONL event trace to this file (see -trace-mask, -trace-cap)")
	traceMask := flag.String("trace-mask", "all", "comma-separated components to trace: iommu,tlb,pwc,avc,bmcache,bitmap,engine,chaos,block or 'all'")
	traceCap := flag.Int("trace-cap", 0, "event ring capacity (0 = default 65536; older events are overwritten)")
	httpAddr := flag.String("http", "", "serve the live observability surface (/metrics, /progress, /debug/pprof/) on this address (e.g. localhost:6060)")
	flag.StringVar(httpAddr, "pprof", "", "deprecated alias of -http")
	spansPath := flag.String("spans", "", "write phase spans as Chrome trace-event JSON to this file (load in ui.perfetto.dev)")
	ckPath := flag.String("checkpoint", "", "persist completed experiment cells to this JSONL file (enables -resume)")
	resume := flag.Bool("resume", false, "with -checkpoint: skip cells a previous interrupted run completed")
	chaosRate := flag.Float64("chaos-rate", 0, "fault-injection probability per injection site (0 disables; results are not paper artifacts)")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-injection PRNG seed (fixed seed = deterministic fault schedule)")
	shareName := flag.String("share-traces", "auto", "trace sharing across a workload's mode cells: auto (one functional trace per replay group) or off (every cell regenerates; A/B verification) — outputs are byte-identical either way")
	shardSpec := flag.String("shard", "", "run only cells i with i%n == k, given as k/n (requires -checkpoint; tables are suppressed — merge and render with -merge-shards then -resume)")
	mergeOut := flag.String("merge-shards", "", "merge the shard checkpoint files given as arguments into this plain checkpoint, then exit")
	graphCache := flag.String("graph-cache", "", "directory for the on-disk CSR graph cache: each (dataset, scale, seed) graph is built once and mmap'd read-only thereafter")
	flag.Parse()

	lg := obs.NewLogger(os.Stderr, "dvmrepro", *quiet)

	// -merge-shards is a standalone mode: fold shard checkpoints into one
	// plain checkpoint and exit. Rendering happens in a second invocation
	// (-checkpoint merged -resume), which replays the merged cells.
	if *mergeOut != "" {
		srcs := flag.Args()
		if len(srcs) == 0 {
			lg.Exitf(2, "-merge-shards requires the shard checkpoint files as arguments")
		}
		base, cells, missing, err := core.MergeCheckpoints(*mergeOut, srcs)
		if err != nil {
			lg.Exitf(1, "%v", err)
		}
		for _, k := range missing {
			fmt.Fprintf(os.Stderr, "dvmrepro: warning: shard %d is missing; rendering with -resume will rerun its cells\n", k)
		}
		fmt.Fprintf(os.Stderr, "dvmrepro: merged %d cells from %d shard(s) into %s (profile %s)\n", cells, len(srcs), *mergeOut, base)
		fmt.Fprintf(os.Stderr, "dvmrepro: render with -checkpoint %s -resume plus the flags that produced profile %q\n", *mergeOut, base)
		return
	}

	coll := &obs.Collector{}
	board := &runner.ProgressBoard{}
	var httpSrv *obs.Server
	if *httpAddr != "" {
		var err error
		httpSrv, err = obs.StartHTTP(*httpAddr, lg, obs.HTTPOptions{
			Metrics:  coll.Snapshot,
			Volatile: coll.VolatileSnapshot,
			Progress: board.Probe(),
		})
		if err != nil {
			lg.Exitf(2, "%v", err)
		}
	}

	prof, err := core.ProfileByName(*profileName)
	if err != nil {
		lg.Exitf(2, "%v", err)
	}

	var shard report.Shard
	if *shardSpec != "" {
		k, n := 0, 0
		if _, err := fmt.Sscanf(*shardSpec, "%d/%d", &k, &n); err != nil ||
			fmt.Sprintf("%d/%d", k, n) != *shardSpec || n < 1 || k < 0 || k >= n {
			lg.Exitf(2, "bad -shard %q (want k/n with 0 <= k < n)", *shardSpec)
		}
		if *ckPath == "" {
			lg.Exitf(2, "-shard requires -checkpoint (a shard's only durable output is its checkpoint)")
		}
		if *metricsPath != "" {
			lg.Exitf(2, "-shard and -metrics are incompatible: merge the shard checkpoints and render with -resume to get the complete snapshot")
		}
		shard = report.Shard{Index: k, Count: n}
	}

	// Ctrl-C / SIGTERM cancels the sweep through the context: workers
	// stop claiming cells, completed cells are already checkpointed, and
	// the partial metrics snapshot is flushed before exiting 130.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	prepared := core.NewPreparedCache()
	if *graphCache != "" {
		if err := os.MkdirAll(*graphCache, 0o777); err != nil {
			lg.Exitf(2, "-graph-cache: %v", err)
		}
		prepared = core.NewPreparedCacheDir(*graphCache)
	}
	defer prepared.Close()
	opts := report.Options{Ctx: ctx, Jobs: *jobs, Metrics: coll, Prepared: prepared, Workers: runner.BudgetFor(*jobs), Shard: shard}
	if !lg.Quiet() {
		opts.Progress = lg.Statusf
	}
	if *httpAddr != "" {
		// The board feeds /progress; it forces progress accounting on
		// even under -q (the no-op line sink).
		opts.Board = board
	}
	var spans *obs.SpanRecorder
	if *spansPath != "" {
		spans = obs.NewSpanRecorder()
		opts.Spans = spans
	}
	var tracer *obs.Tracer
	if *tracePath != "" {
		mask, err := obs.ParseMask(*traceMask)
		if err != nil {
			lg.Exitf(2, "%v", err)
		}
		tracer = obs.NewTracer(*traceCap, mask)
		opts.Tracer = tracer
	}
	// The checkpoint identity includes the chaos configuration and the
	// mode set: cells simulated under fault injection (or with extra
	// mode columns) must never satisfy a default run's resume (or vice
	// versa).
	ckProfile := prof.Name
	switch *modesName {
	case "paper":
		// opts.Modes nil: the seven-column byte-stable artifact.
	case "extended":
		opts.Modes = core.RegisteredModes()
		ckProfile += "+modes(extended)"
	default:
		lg.Exitf(2, "unknown -modes %q (paper|extended)", *modesName)
	}
	switch *shareName {
	case "auto":
		// opts.Share zero value: replay groups on, no checkpoint suffix
		// (the shared and unshared cells are byte-identical, but auto is
		// the canonical namespace).
	case "off":
		opts.Share = core.ShareOff
		ckProfile += "+share(off)"
	default:
		lg.Exitf(2, "unknown -share-traces %q (auto|off)", *shareName)
	}
	if *chaosRate > 0 {
		opts.Chaos = &chaos.Config{Seed: *chaosSeed, Rate: *chaosRate}
		ckProfile = fmt.Sprintf("%s+chaos(seed=%d,rate=%g)", ckProfile, *chaosSeed, *chaosRate)
		lg.Statusf("chaos armed: seed %d rate %g (outputs are not paper artifacts)", *chaosSeed, *chaosRate)
	}
	// The shard suffix goes last so MergeCheckpoints can strip exactly it
	// and recover the full base namespace (modes/share/chaos included).
	if shard.Count > 0 {
		ckProfile = core.ShardProfile(ckProfile, shard.Index, shard.Count)
	}
	if *resume && *ckPath == "" {
		lg.Exitf(2, "-resume requires -checkpoint")
	}
	var ck *core.Checkpoint
	if *ckPath != "" {
		ck, err = core.OpenCheckpoint(*ckPath, ckProfile, *resume)
		if err != nil {
			lg.Exitf(1, "%v", err)
		}
		opts.Checkpoint = ck
		if *resume && ck.Len() > 0 {
			lg.Statusf("resuming from %s: %d completed cells restored", *ckPath, ck.Len())
		}
	}

	known := map[string]bool{}
	for _, k := range artifactKeys {
		known[k] = true
	}
	wanted := map[string]bool{}
	if *only == "" {
		for _, k := range artifactKeys {
			wanted[k] = true
		}
	} else {
		var unknown []string
		for _, k := range strings.Split(*only, ",") {
			k = strings.TrimSpace(k)
			if k == "" {
				continue
			}
			if !known[k] {
				unknown = append(unknown, k)
				continue
			}
			wanted[k] = true
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			lg.Exitf(2, "unknown artifact key(s) %s; valid keys: %s",
				strings.Join(unknown, ", "), strings.Join(artifactKeys, ", "))
		}
		if len(wanted) == 0 {
			lg.Exitf(2, "-only selected nothing; valid keys: %s", strings.Join(artifactKeys, ", "))
		}
	}

	// interrupted is the Ctrl-C epilogue: everything durable is flushed
	// (completed cells are already on disk in the checkpoint; the partial
	// metrics/trace snapshots are written now) and the process exits with
	// the conventional 128+SIGINT status.
	interrupted := func(name string) {
		lg.Statusf("interrupted during %s", name)
		if err := ck.Close(); err != nil {
			lg.Statusf("checkpoint close: %v", err)
		}
		if tracer != nil {
			// The final drop count is folded in only at flush time: a
			// tracer is shared across cells, so a mid-sweep reading
			// would depend on completion order.
			opts.Metrics.Inc("trace.dropped", tracer.Dropped())
		}
		if *metricsPath != "" {
			if err := writeMetrics(*metricsPath, opts.Metrics); err != nil {
				lg.Statusf("partial metrics: %v", err)
			} else {
				lg.Statusf("partial metrics written to %s", *metricsPath)
			}
		}
		if tracer != nil {
			if err := writeTrace(*tracePath, tracer); err != nil {
				lg.Statusf("partial trace: %v", err)
			}
		}
		if spans != nil {
			if err := writeSpans(*spansPath, spans); err != nil {
				lg.Statusf("partial spans: %v", err)
			} else {
				lg.Statusf("partial spans written to %s", *spansPath)
			}
		}
		if *ckPath != "" {
			lg.Statusf("%d completed cells checkpointed; rerun with -checkpoint %s -resume to continue", ck.Len(), *ckPath)
		}
		// Drain the -http listener so an in-flight /metrics scrape sees a
		// complete response instead of a connection reset.
		httpSrv.Shutdown(2 * time.Second)
		os.Exit(130)
	}

	out := io.Writer(os.Stdout)
	if shard.Count > 0 {
		// A shard's table rows are partial (unowned cells render as
		// zeros), so the rendered text is suppressed; the checkpoint is
		// the shard's durable output.
		out = io.Discard
		lg.Statusf("shard %d/%d: tables suppressed; completed cells go to %s", shard.Index, shard.Count, *ckPath)
	}
	// report.Sweep is the rendering path shared with dvmserved; the
	// observe hook adds this command's per-artifact status lines.
	if err := report.Sweep(prof, out, opts, wanted, func(key string, render func() error) error {
		start := time.Now()
		lg.Statusf("== %s (profile %s)", key, prof.Name)
		if err := render(); err != nil {
			return err
		}
		lg.Statusf("== %s done in %v", key, time.Since(start).Round(time.Millisecond))
		return nil
	}); err != nil {
		if ctx.Err() != nil {
			interrupted(report.ArtifactKeyOf(err))
		}
		lg.Exitf(1, "%v", err)
	}

	if err := ck.Close(); err != nil {
		lg.Exitf(1, "checkpoint: %v", err)
	}
	if shard.Count > 0 {
		fmt.Fprintf(os.Stderr, "dvmrepro: shard %d/%d complete: %d cells in %s; combine with -merge-shards\n",
			shard.Index, shard.Count, ck.Len(), *ckPath)
	}
	if tracer != nil {
		// Fold the final drop count in at flush time (see interrupted).
		opts.Metrics.Inc("trace.dropped", tracer.Dropped())
	}
	if *metricsPath != "" {
		if err := writeMetrics(*metricsPath, opts.Metrics); err != nil {
			lg.Exitf(1, "%v", err)
		}
		lg.Statusf("metrics written to %s", *metricsPath)
	}
	if tracer != nil {
		if err := writeTrace(*tracePath, tracer); err != nil {
			lg.Exitf(1, "%v", err)
		}
		lg.Statusf("trace written to %s (%d events emitted, %d retained)",
			*tracePath, tracer.Total(), len(tracer.Events()))
	}
	if spans != nil {
		if err := writeSpans(*spansPath, spans); err != nil {
			lg.Exitf(1, "%v", err)
		}
		lg.Statusf("spans written to %s (%d recorded, %d dropped); load in ui.perfetto.dev",
			*spansPath, len(spans.Spans()), spans.Dropped())
	}
	httpSrv.Shutdown(2 * time.Second)
}

func writeMetrics(path string, coll *obs.Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := coll.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeSpans(path string, sp *obs.SpanRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sp.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
