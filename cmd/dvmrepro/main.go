// Command dvmrepro regenerates the tables and figures of "Devirtualizing
// Memory in Heterogeneous Systems" (ASPLOS'18) from the simulation in this
// repository.
//
// Usage:
//
//	dvmrepro [-profile tiny|small|medium|paper] [-only fig2,table1,table3,fig8,fig9,table4,fig10,table5,ablations] [-quiet]
//
// With no -only flag every artifact is regenerated in paper order. Output
// goes to stdout; progress lines go to stderr unless -quiet is set.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/dvm-sim/dvm/internal/core"
	"github.com/dvm-sim/dvm/internal/report"
)

func main() {
	profileName := flag.String("profile", "small", "experiment profile: tiny|small|medium|paper (see DESIGN.md §6)")
	only := flag.String("only", "", "comma-separated subset: fig2,table1,table3,fig8,fig9,table4,fig10,table5,ablations")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	prof, err := core.ProfileByName(*profileName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var progress report.Progress
	if !*quiet {
		progress = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "  ... "+format+"\n", args...)
		}
	}

	wanted := map[string]bool{}
	if *only == "" {
		for _, k := range []string{"table3", "fig2", "table1", "fig8", "fig9", "table4", "fig10", "table5", "ablations", "virt"} {
			wanted[k] = true
		}
	} else {
		for _, k := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(k)] = true
		}
	}

	run := func(name string, fn func() error) {
		if !wanted[name] {
			return
		}
		start := time.Now()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "== %s (profile %s)\n", name, prof.Name)
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "== %s done in %v\n", name, time.Since(start).Round(time.Millisecond))
		}
	}

	out := os.Stdout
	run("table3", func() error { return report.Table3(prof, out, progress) })
	run("fig2", func() error { return report.Figure2(prof, out, progress) })
	run("table1", func() error { return report.Table1(prof, out, progress) })
	// fig8 and fig9 come from the same runs; requesting either (or both)
	// renders both tables once.
	if wanted["fig8"] || wanted["fig9"] {
		run8 := func() error { return report.Figure8And9(prof, out, progress) }
		name := "fig8"
		if !wanted["fig8"] {
			name = "fig9"
		}
		wanted[name] = true
		run(name, run8)
	}
	run("table4", func() error { return report.Table4(out, progress) })
	run("fig10", func() error { return report.Figure10(out, progress) })
	run("table5", func() error { return report.Table5(out) })
	run("ablations", func() error { return report.Ablations(prof, out, progress) })
	run("virt", func() error { return report.Virtualization(out, progress) })
}
