// Command dvmrepro regenerates the tables and figures of "Devirtualizing
// Memory in Heterogeneous Systems" (ASPLOS'18) from the simulation in this
// repository.
//
// Usage:
//
//	dvmrepro [-profile tiny|small|medium|paper] [-j N] [-only fig2,table1,table3,fig8,fig9,table4,fig10,table5,ablations,virt] [-quiet]
//
// With no -only flag every artifact is regenerated in paper order. Output
// goes to stdout; progress lines go to stderr unless -quiet is set. The
// evaluation matrix is embarrassingly parallel: -j bounds how many
// experiment cells run concurrently (default: one per CPU), and every
// rendered table is byte-identical at any -j (-j 1 reproduces the
// sequential sweep exactly).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/dvm-sim/dvm/internal/core"
	"github.com/dvm-sim/dvm/internal/report"
)

// artifactKeys is the -only vocabulary, in paper rendering order.
var artifactKeys = []string{"table3", "fig2", "table1", "fig8", "fig9", "table4", "fig10", "table5", "ablations", "virt"}

func main() {
	profileName := flag.String("profile", "small", "experiment profile: tiny|small|medium|paper (see DESIGN.md §6)")
	only := flag.String("only", "", "comma-separated subset: "+strings.Join(artifactKeys, ","))
	jobs := flag.Int("j", 0, "max concurrent experiment cells (0 = one per CPU, 1 = sequential)")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	prof, err := core.ProfileByName(*profileName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var progress report.Progress
	if !*quiet {
		progress = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "  ... "+format+"\n", args...)
		}
	}
	opts := report.Options{Jobs: *jobs, Progress: progress}

	known := map[string]bool{}
	for _, k := range artifactKeys {
		known[k] = true
	}
	wanted := map[string]bool{}
	if *only == "" {
		for _, k := range artifactKeys {
			wanted[k] = true
		}
	} else {
		var unknown []string
		for _, k := range strings.Split(*only, ",") {
			k = strings.TrimSpace(k)
			if k == "" {
				continue
			}
			if !known[k] {
				unknown = append(unknown, k)
				continue
			}
			wanted[k] = true
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "dvmrepro: unknown artifact key(s) %s; valid keys: %s\n",
				strings.Join(unknown, ", "), strings.Join(artifactKeys, ", "))
			os.Exit(2)
		}
		if len(wanted) == 0 {
			fmt.Fprintf(os.Stderr, "dvmrepro: -only selected nothing; valid keys: %s\n", strings.Join(artifactKeys, ", "))
			os.Exit(2)
		}
	}

	run := func(name string, fn func() error) {
		if !wanted[name] {
			return
		}
		start := time.Now()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "== %s (profile %s)\n", name, prof.Name)
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "== %s done in %v\n", name, time.Since(start).Round(time.Millisecond))
		}
	}

	out := os.Stdout
	run("table3", func() error { return report.Table3(prof, out, opts) })
	run("fig2", func() error { return report.Figure2(prof, out, opts) })
	run("table1", func() error { return report.Table1(prof, out, opts) })
	// fig8 and fig9 come from the same runs; requesting either (or both)
	// renders both tables once.
	if wanted["fig8"] || wanted["fig9"] {
		run8 := func() error { return report.Figure8And9(prof, out, opts) }
		name := "fig8"
		if !wanted["fig8"] {
			name = "fig9"
		}
		wanted[name] = true
		run(name, run8)
	}
	run("table4", func() error { return report.Table4(out, opts) })
	run("fig10", func() error { return report.Figure10(out, opts) })
	run("table5", func() error { return report.Table5(out) })
	run("ablations", func() error { return report.Ablations(prof, out, opts) })
	run("virt", func() error { return report.Virtualization(out, opts) })
}
