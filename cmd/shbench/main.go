// Command shbench regenerates Table 4: the percentage of system memory
// that the shbench allocation workload can allocate before identity
// mapping (VA==PA) fails to hold.
//
// Usage:
//
//	shbench              # the full 3x3 table
//	shbench -expt 2 -mem 32   # one cell (memory in GB)
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/dvm-sim/dvm/internal/obs"
	"github.com/dvm-sim/dvm/internal/report"
	"github.com/dvm-sim/dvm/internal/runner"
	"github.com/dvm-sim/dvm/internal/shbench"
)

func main() {
	expt := flag.Int("expt", 0, "run a single experiment (1-3); 0 = full table")
	memGB := flag.Uint64("mem", 32, "system memory in GB for -expt")
	jobs := flag.Int("j", 0, "max concurrent experiment cells (0 = one per CPU, 1 = sequential)")
	quiet := flag.Bool("q", false, "suppress status output")
	flag.Parse()

	lg := obs.NewLogger(os.Stderr, "shbench", *quiet)
	if *expt == 0 {
		opts := report.Options{Jobs: *jobs, Workers: runner.BudgetFor(*jobs)}
		if !lg.Quiet() {
			opts.Progress = lg.Statusf
		}
		if err := report.Table4(os.Stdout, opts); err != nil {
			lg.Exitf(1, "%v", err)
		}
		return
	}
	for _, e := range shbench.Experiments {
		if e.ID != *expt {
			continue
		}
		r, err := shbench.Run(e, *memGB<<30)
		if err != nil {
			lg.Exitf(1, "%v", err)
		}
		fmt.Printf("experiment %d at %d GB: %.1f%% of memory identity mapped (%d allocations, %d bytes)\n",
			e.ID, *memGB, r.Percent, r.Allocations, r.AllocatedBytes)
		return
	}
	lg.Exitf(1, "no experiment %d (have 1-3)", *expt)
}
