// Command shbench regenerates Table 4: the percentage of system memory
// that the shbench allocation workload can allocate before identity
// mapping (VA==PA) fails to hold.
//
// Usage:
//
//	shbench              # the full 3x3 table
//	shbench -expt 2 -mem 32   # one cell (memory in GB)
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/dvm-sim/dvm/internal/report"
	"github.com/dvm-sim/dvm/internal/shbench"
)

func main() {
	expt := flag.Int("expt", 0, "run a single experiment (1-3); 0 = full table")
	memGB := flag.Uint64("mem", 32, "system memory in GB for -expt")
	jobs := flag.Int("j", 0, "max concurrent experiment cells (0 = one per CPU, 1 = sequential)")
	flag.Parse()

	if *expt == 0 {
		if err := report.Table4(os.Stdout, report.Options{Jobs: *jobs}); err != nil {
			fatal(err)
		}
		return
	}
	for _, e := range shbench.Experiments {
		if e.ID != *expt {
			continue
		}
		r, err := shbench.Run(e, *memGB<<30)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("experiment %d at %d GB: %.1f%% of memory identity mapped (%d allocations, %d bytes)\n",
			e.ID, *memGB, r.Percent, r.Allocations, r.AllocatedBytes)
		return
	}
	fatal(fmt.Errorf("no experiment %d (have 1-3)", *expt))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
