// Command dvmsim runs a single accelerator experiment cell: one algorithm
// on one dataset under one (or every) memory-management mode, printing
// cycles, miss rates and MMU energy.
//
// Usage:
//
//	dvmsim -alg PageRank -dataset Wiki [-mode DVM-PE+] [-profile small] [-seed 42] [-j N]
//	       [-chaos-rate p -chaos-seed N]
//	       [-metrics file] [-trace file] [-trace-mask comps]
//	       [-http addr] [-spans file] [-q]
//
// Omitting -mode runs all seven paper configurations and prints a
// comparison; -mode accepts a comma-separated list of registered mode
// names or aliases (case-insensitive), plus the keywords "all" (paper
// set) and "extended" (paper set + SPARTA + VBI).
// -j bounds how many of those runs execute concurrently (default: one per
// CPU; the printed table is identical at any -j). -metrics writes the
// merged registry snapshot (counters and histograms) of all runs as JSON;
// -trace writes a JSONL event trace of the translation path; -spans
// writes phase spans as Chrome trace-event JSON (ui.perfetto.dev); -http
// serves the live surface (/metrics, /progress, /debug/pprof/; -pprof is
// the deprecated alias).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/dvm-sim/dvm/internal/chaos"
	"github.com/dvm-sim/dvm/internal/core"
	"github.com/dvm-sim/dvm/internal/graph"
	"github.com/dvm-sim/dvm/internal/obs"
	"github.com/dvm-sim/dvm/internal/results"
	"github.com/dvm-sim/dvm/internal/runner"
)

func main() {
	alg := flag.String("alg", "PageRank", "algorithm: BFS|PageRank|SSSP|CF")
	dataset := flag.String("dataset", "Wiki", "dataset: "+strings.Join(graph.DatasetNames(), "|"))
	modeName := flag.String("mode", "", "comma-separated mode list (default: the seven paper modes); names/aliases are case-insensitive (e.g. 4K|DVM-BM|pe+|SPARTA|VBI), plus 'all' (paper set) and 'extended' (paper + SPARTA + VBI)")
	profileName := flag.String("profile", "small", "experiment profile: "+strings.Join(core.ProfileNames(), "|"))
	seed := flag.Int64("seed", 42, "graph generation seed")
	jobs := flag.Int("j", 0, "max concurrent mode runs (0 = one per CPU, 1 = sequential)")
	quiet := flag.Bool("q", false, "suppress status output")
	metricsPath := flag.String("metrics", "", "write the merged metrics-registry snapshot as JSON to this file")
	tracePath := flag.String("trace", "", "write a JSONL event trace to this file (see -trace-mask, -trace-cap)")
	traceMask := flag.String("trace-mask", "all", "comma-separated components to trace: iommu,tlb,pwc,avc,bmcache,bitmap,engine,chaos,block or 'all'")
	traceCap := flag.Int("trace-cap", 0, "event ring capacity (0 = default 65536; older events are overwritten)")
	httpAddr := flag.String("http", "", "serve the live observability surface (/metrics, /progress, /debug/pprof/) on this address (e.g. localhost:6060)")
	flag.StringVar(httpAddr, "pprof", "", "deprecated alias of -http")
	spansPath := flag.String("spans", "", "write phase spans as Chrome trace-event JSON to this file (load in ui.perfetto.dev)")
	chaosRate := flag.Float64("chaos-rate", 0, "fault-injection probability per injection site (0 disables; results are not paper artifacts)")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-injection PRNG seed (fixed seed = deterministic fault schedule)")
	shareName := flag.String("share-traces", "auto", "trace sharing across mode cells: auto (one functional trace for the sweep) or off (every mode regenerates; A/B verification) — the table and -metrics are byte-identical either way")
	flag.Parse()

	lg := obs.NewLogger(os.Stderr, "dvmsim", *quiet)
	coll := &obs.Collector{}
	board := &runner.ProgressBoard{}
	var httpSrv *obs.Server
	if *httpAddr != "" {
		var err error
		httpSrv, err = obs.StartHTTP(*httpAddr, lg, obs.HTTPOptions{
			Metrics:  coll.Snapshot,
			Volatile: coll.VolatileSnapshot,
			Progress: board.Probe(),
		})
		if err != nil {
			lg.Exitf(2, "%v", err)
		}
	}

	prof, err := core.ProfileByName(*profileName)
	if err != nil {
		lg.Exitf(2, "%v", err)
	}
	d, err := graph.DatasetByName(*dataset)
	if err != nil {
		lg.Exitf(2, "%v", err)
	}
	w := core.Workload{
		Algorithm:     *alg,
		Dataset:       d,
		Scale:         prof.Scale,
		PageRankIters: prof.PageRankIters,
		Seed:          *seed,
	}
	workers := runner.BudgetFor(*jobs)
	p, err := core.PrepareB(w, workers)
	if err != nil {
		lg.Exitf(1, "%v", err)
	}
	fmt.Printf("%s on %s: %d vertices, %d edges (scale %.4g)\n\n", *alg, *dataset, p.G.V, p.G.E(), prof.Scale)

	modes, err := parseModes(*modeName)
	if err != nil {
		lg.Exitf(2, "%v", err)
	}

	cfg := prof.SystemConfig()
	cfg.Workers = workers
	// Share accounting (accel.trace.*) is scheduling-dependent, so it goes
	// to the volatile side of the collector: visible on /metrics, excluded
	// from the deterministic -metrics export.
	cfg.Volatile = coll
	switch *shareName {
	case "auto":
		// cfg.ShareTraces zero value: replay groups on.
	case "off":
		cfg.ShareTraces = core.ShareOff
	default:
		lg.Exitf(2, "unknown -share-traces %q (auto|off)", *shareName)
	}
	if *chaosRate > 0 {
		cfg.Chaos = &chaos.Config{Seed: *chaosSeed, Rate: *chaosRate}
		lg.Statusf("chaos armed: seed %d rate %g (outputs are not paper artifacts)", *chaosSeed, *chaosRate)
	}
	var tracer *obs.Tracer
	if *tracePath != "" {
		mask, err := obs.ParseMask(*traceMask)
		if err != nil {
			lg.Exitf(2, "%v", err)
		}
		tracer = obs.NewTracer(*traceCap, mask)
		cfg.Tracer = tracer
	}
	var spans *obs.SpanRecorder
	if *spansPath != "" {
		spans = obs.NewSpanRecorder()
		cfg.Spans = spans
	}
	// Ctrl-C cancels the mode sweep cleanly; the partial metrics
	// snapshot is still flushed below before exiting 130.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	progress := runner.NewProgress(len(modes), runner.Logf(lg.Statusf))
	board.Set(progress)
	// RunModesShared groups the sweep into replay groups (one functional
	// trace feeding every mode) unless -share-traces=off or chaos forces
	// independent runs; results are byte-identical either way and at any
	// -j. The per-mode bookkeeping runs after the sweep in mode order so
	// the merged metrics snapshot is deterministic.
	byMode, err := p.RunModesShared(ctx, modes, cfg, *jobs)
	if err == nil {
		for _, m := range modes {
			r := byMode[m]
			if err = core.CrossCheck(r); err != nil {
				break
			}
			coll.Add(r.Metrics)
			// Host wall time is nondeterministic: volatile side only,
			// served by /metrics, never part of the -metrics export.
			coll.Observe("runner.cell.wall.us", uint64(r.Wall.Microseconds()))
			progress.Done("%v: %d cycles in %v", m, r.Stats.Cycles, r.Wall.Round(time.Millisecond))
		}
	}
	if err != nil {
		if ctx.Err() != nil {
			if tracer != nil {
				coll.Inc("trace.dropped", tracer.Dropped())
			}
			if *metricsPath != "" {
				if werr := writeSnapshot(*metricsPath, coll); werr == nil {
					lg.Statusf("partial metrics written to %s", *metricsPath)
				}
			}
			if spans != nil {
				if werr := writeSpans(*spansPath, spans); werr == nil {
					lg.Statusf("partial spans written to %s", *spansPath)
				}
			}
			lg.Statusf("interrupted")
			// Drain the -http listener so an in-flight scrape finishes
			// instead of seeing a connection reset.
			httpSrv.Shutdown(2 * time.Second)
			os.Exit(130)
		}
		lg.Exitf(1, "%v", err)
	}
	t := results.NewTable("", "Mode", "Cycles", "TLB miss", "Struct hit", "Walk refs", "Squashes", "MMU energy (pJ)")
	for _, m := range modes {
		r := byMode[m]
		t.MustAddRow(m.String(),
			fmt.Sprintf("%d", r.Stats.Cycles),
			results.Pct(r.TLBMissRate),
			results.Pct(r.StructHitRate),
			fmt.Sprintf("%d", r.IOMMU.WalkMemRefs),
			fmt.Sprintf("%d", r.IOMMU.SquashedPreloads),
			results.F(r.Energy.Total, 0))
	}
	if err := t.WriteASCII(os.Stdout); err != nil {
		lg.Exitf(1, "%v", err)
	}

	if tracer != nil {
		// The final drop count is folded in only at flush time: the
		// tracer is shared across mode runs, so a mid-sweep reading
		// would depend on completion order.
		coll.Inc("trace.dropped", tracer.Dropped())
	}
	if *metricsPath != "" {
		if err := writeSnapshot(*metricsPath, coll); err != nil {
			lg.Exitf(1, "%v", err)
		}
		lg.Statusf("metrics written to %s", *metricsPath)
	}
	if tracer != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			lg.Exitf(1, "%v", err)
		}
		if err := tracer.WriteJSONL(f); err != nil {
			lg.Exitf(1, "%v", err)
		}
		if err := f.Close(); err != nil {
			lg.Exitf(1, "%v", err)
		}
		lg.Statusf("trace written to %s (%d events emitted, %d retained)",
			*tracePath, tracer.Total(), len(tracer.Events()))
	}
	if spans != nil {
		if err := writeSpans(*spansPath, spans); err != nil {
			lg.Exitf(1, "%v", err)
		}
		lg.Statusf("spans written to %s (%d recorded, %d dropped); load in ui.perfetto.dev",
			*spansPath, len(spans.Spans()), spans.Dropped())
	}
	httpSrv.Shutdown(2 * time.Second)
}

// parseModes resolves the -mode flag through the backend registry: a
// comma-separated list of registered names/aliases (case-insensitive),
// or the keywords "all" (the seven paper modes) and "extended" (paper
// set plus the registered extras). Empty selects the paper set. Unknown
// names error, listing the registered vocabulary.
func parseModes(spec string) ([]core.Mode, error) {
	if spec == "" {
		return core.AllModes, nil
	}
	var modes []core.Mode
	seen := map[core.Mode]bool{}
	add := func(ms ...core.Mode) {
		for _, m := range ms {
			if !seen[m] {
				seen[m] = true
				modes = append(modes, m)
			}
		}
	}
	for _, name := range strings.Split(spec, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "all":
			add(core.AllModes...)
		case "extended":
			add(core.RegisteredModes()...)
		default:
			m, err := core.ModeByName(name)
			if err != nil {
				return nil, err
			}
			add(m)
		}
	}
	return modes, nil
}

func writeSnapshot(path string, coll *obs.Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := coll.Snapshot().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeSpans(path string, sp *obs.SpanRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sp.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
