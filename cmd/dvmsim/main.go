// Command dvmsim runs a single accelerator experiment cell: one algorithm
// on one dataset under one (or every) memory-management mode, printing
// cycles, miss rates and MMU energy.
//
// Usage:
//
//	dvmsim -alg PageRank -dataset Wiki [-mode DVM-PE+] [-profile small] [-seed 42] [-j N]
//
// Omitting -mode runs all seven configurations and prints a comparison;
// -j bounds how many of those runs execute concurrently (default: one per
// CPU; the printed table is identical at any -j).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/dvm-sim/dvm/internal/core"
	"github.com/dvm-sim/dvm/internal/graph"
	"github.com/dvm-sim/dvm/internal/results"
	"github.com/dvm-sim/dvm/internal/runner"
)

func main() {
	alg := flag.String("alg", "PageRank", "algorithm: BFS|PageRank|SSSP|CF")
	dataset := flag.String("dataset", "Wiki", "dataset: FR|Wiki|LJ|S24|NF|Bip1|Bip2")
	modeName := flag.String("mode", "", "mode (default: all): Ideal|4K,TLB+PWC|2M,TLB+PWC|1G,TLB+PWC|DVM-BM|DVM-PE|DVM-PE+")
	profileName := flag.String("profile", "small", "experiment profile: tiny|small|medium|paper")
	seed := flag.Int64("seed", 42, "graph generation seed")
	jobs := flag.Int("j", 0, "max concurrent mode runs (0 = one per CPU, 1 = sequential)")
	flag.Parse()

	prof, err := core.ProfileByName(*profileName)
	if err != nil {
		fatal(err)
	}
	d, err := graph.DatasetByName(*dataset)
	if err != nil {
		fatal(err)
	}
	w := core.Workload{
		Algorithm:     *alg,
		Dataset:       d,
		Scale:         prof.Scale,
		PageRankIters: prof.PageRankIters,
		Seed:          *seed,
	}
	p, err := core.Prepare(w)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s on %s: %d vertices, %d edges (scale %.4g)\n\n", *alg, *dataset, p.G.V, p.G.E(), prof.Scale)

	modes := core.AllModes
	if *modeName != "" {
		modes = nil
		for _, m := range core.AllModes {
			if m.String() == *modeName {
				modes = []core.Mode{m}
			}
		}
		if modes == nil {
			fatal(fmt.Errorf("unknown mode %q", *modeName))
		}
	}

	rows, err := runner.Map(context.Background(), *jobs, len(modes), func(_ context.Context, i int) (core.RunResult, error) {
		return p.Run(modes[i], prof.SystemConfig())
	})
	if err != nil {
		fatal(err)
	}
	t := results.NewTable("", "Mode", "Cycles", "TLB miss", "Struct hit", "Walk refs", "Squashes", "MMU energy (pJ)")
	for i, m := range modes {
		r := rows[i]
		t.MustAddRow(m.String(),
			fmt.Sprintf("%d", r.Stats.Cycles),
			results.Pct(r.TLBMissRate),
			results.Pct(r.StructHitRate),
			fmt.Sprintf("%d", r.IOMMU.WalkMemRefs),
			fmt.Sprintf("%d", r.IOMMU.SquashedPreloads),
			results.F(r.Energy.Total, 0))
	}
	if err := t.WriteASCII(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
