// Command dvminspect builds a workload's address space and dumps its page
// tables — conventional and Permission Entry forms side by side — making
// the paper's Table 1 effect visible structurally.
//
// Usage:
//
//	dvminspect [-alg PageRank] [-dataset FR] [-profile tiny] [-pe-only]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dvm-sim/dvm/internal/accel"
	"github.com/dvm-sim/dvm/internal/core"
	"github.com/dvm-sim/dvm/internal/graph"
	"github.com/dvm-sim/dvm/internal/obs"
	"github.com/dvm-sim/dvm/internal/osmodel"
)

func main() {
	alg := flag.String("alg", "PageRank", "algorithm: BFS|PageRank|SSSP|CF")
	dataset := flag.String("dataset", "FR", "dataset: "+strings.Join(graph.DatasetNames(), "|"))
	profileName := flag.String("profile", "tiny", "experiment profile: "+strings.Join(core.ProfileNames(), "|"))
	peOnly := flag.Bool("pe-only", false, "dump only the Permission Entry table")
	quiet := flag.Bool("q", false, "suppress status output")
	flag.Parse()

	lg := obs.NewLogger(os.Stderr, "dvminspect", *quiet)
	prof, err := core.ProfileByName(*profileName)
	if err != nil {
		lg.Exitf(2, "%v", err)
	}
	d, err := graph.DatasetByName(*dataset)
	if err != nil {
		lg.Exitf(2, "%v", err)
	}
	p, err := core.Prepare(core.Workload{
		Algorithm: *alg, Dataset: d, Scale: prof.Scale,
		PageRankIters: prof.PageRankIters, Seed: 42,
	})
	if err != nil {
		lg.Exitf(1, "%v", err)
	}
	sys, err := osmodel.NewSystem(32 << 30)
	if err != nil {
		lg.Exitf(1, "%v", err)
	}
	proc := sys.NewProcess(osmodel.Policy{IdentityMapHeap: true, Seed: 42})
	lay, err := accel.BuildLayout(proc, p.G, p.Prog.PropBytes)
	if err != nil {
		lg.Exitf(1, "%v", err)
	}
	fmt.Printf("%s/%s: %d vertices, %d edges, heap %d KB, identity=%v\n",
		*alg, *dataset, p.G.V, p.G.E(), lay.HeapBytes>>10, lay.IdentityMapped)
	fmt.Printf("arrays: props=%#x temps=%#x index=%#x edges=%#x frontier=%#x\n\n",
		uint64(lay.VertexProp), uint64(lay.TempProp), uint64(lay.EdgeIndex), uint64(lay.Edges), uint64(lay.Frontier))

	if !*peOnly {
		std, err := proc.BuildCanonicalTable(false)
		if err != nil {
			lg.Exitf(1, "%v", err)
		}
		fmt.Println("== conventional 4K page table ==")
		if err := std.Dump(os.Stdout); err != nil {
			lg.Exitf(1, "%v", err)
		}
		fmt.Println()
	}
	pe, err := proc.BuildCanonicalTable(true)
	if err != nil {
		lg.Exitf(1, "%v", err)
	}
	fmt.Println("== Permission Entry page table ==")
	if err := pe.Dump(os.Stdout); err != nil {
		lg.Exitf(1, "%v", err)
	}
}
