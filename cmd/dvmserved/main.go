// Command dvmserved runs the simulation matrix as a service: a
// long-running daemon accepting sweep jobs over HTTP/JSON, sharding
// their experiment cells across a persistent worker fleet, and
// persisting every completed cell so that neither a crash nor a
// restart loses work.
//
// Usage:
//
//	dvmserved -addr localhost:8080 -dir /var/lib/dvmserved [-j N]
//	          [-cell-timeout 5m] [-retries 3] [-sync-every 1] [-q]
//
// Submit a job (the spec mirrors dvmrepro's flags):
//
//	curl -X POST localhost:8080/jobs -d '{"profile":"tiny"}'
//	curl localhost:8080/jobs/j0001                # status + progress
//	curl localhost:8080/jobs/j0001/result         # rendered tables
//	curl localhost:8080/jobs/j0001/metrics        # metrics snapshot
//	curl -X DELETE localhost:8080/jobs/j0001      # cancel
//
// Durability: every completed experiment cell appends (and fsyncs, at
// the -sync-every cadence) to the job's checkpoint before it counts as
// done, and every job state transition is an atomic temp+rename of the
// job record — so a kill -9 mid-sweep loses at most the in-flight
// cells. On restart the daemon rescans -dir, truncates torn checkpoint
// tails, and resumes every incomplete job; the resumed job's tables and
// metrics are byte-identical to an uninterrupted run (the CI crash-
// recovery step pins this against single-shot dvmrepro output).
//
// Shutdown: SIGTERM (or the first Ctrl-C) drains gracefully — admission
// stops, in-flight cells finish and are checkpointed, every running job
// is re-queued durably, and the process exits 0 after reporting what
// will resume. A second Ctrl-C exits immediately (130); completed cells
// are already on disk, so even that loses nothing durable.
//
// Fairness: jobs carry an optional "client" tag; the daemon carves its
// global -j worker budget into per-client fair shares, recomputed as
// tenants come and go, so one client's backlog cannot starve another's
// job. Every job always runs at least one worker regardless of share.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/dvm-sim/dvm/internal/obs"
	"github.com/dvm-sim/dvm/internal/serve"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "HTTP listen address")
	dir := flag.String("dir", "dvmserved-jobs", "durable job store directory")
	jobs := flag.Int("j", 0, "max concurrent experiment cells across all jobs (0 = one per CPU)")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-cell watchdog (0 = none); a wedged cell fails its job instead of hanging the daemon")
	retries := flag.Int("retries", 3, "attempts per transient-failing cell (1 = no retry; panics and timeouts never retry)")
	retryBackoff := flag.Duration("retry-backoff", 10*time.Millisecond, "first retry delay (doubles per attempt, capped at 1s, jittered)")
	retrySeed := flag.Uint64("retry-seed", 0, "retry jitter seed (0 = fixed default; any value is deterministic)")
	syncEvery := flag.Int("sync-every", 1, "checkpoint fsync cadence in cells (1 = every cell; raise for sweeps of thousands of cheap cells)")
	quiet := flag.Bool("q", false, "suppress status output")
	flag.Parse()

	lg := obs.NewLogger(os.Stderr, "dvmserved", *quiet)
	coll := &obs.Collector{}

	store, err := serve.NewStore(*dir)
	if err != nil {
		lg.Exitf(1, "%v", err)
	}
	sched, err := serve.NewScheduler(store, serve.Config{
		Jobs:          *jobs,
		CellTimeout:   *cellTimeout,
		RetryAttempts: *retries,
		RetryBackoff:  *retryBackoff,
		RetrySeed:     *retrySeed,
		SyncEvery:     *syncEvery,
		Metrics:       coll,
		Logf:          lg.Statusf,
	})
	if err != nil {
		lg.Exitf(1, "%v", err)
	}

	api := serve.NewAPI(sched, obs.HTTPOptions{
		Metrics:  coll.Snapshot,
		Volatile: coll.VolatileSnapshot,
		Progress: sched.Progress,
	}, lg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		lg.Exitf(1, "listen %s: %v", *addr, err)
	}
	srv := &http.Server{Handler: api.Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			lg.Exitf(1, "http: %v", err)
		}
	}()
	lg.Statusf("serving on http://%s/ (job store %s, %d-cell fsync cadence)", ln.Addr(), *dir, *syncEvery)

	// SIGTERM or the first Ctrl-C drains gracefully; a second Ctrl-C
	// aborts immediately (completed cells are already durable).
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	sig := <-sigs
	lg.Statusf("%v: draining (in-flight cells finish and checkpoint; Ctrl-C again to abort)", sig)
	hard := make(chan struct{})
	go func() {
		<-sigs
		close(hard)
	}()
	drained := make(chan []string, 1)
	go func() { drained <- sched.Drain() }()
	select {
	case ids := <-drained:
		sched.Close()
		if len(ids) > 0 {
			lg.Statusf("drained; %d job(s) will resume on restart: %v", len(ids), ids)
		} else {
			lg.Statusf("drained; no jobs in flight")
		}
		// Let in-flight HTTP responses (a last status poll) finish.
		shutdownHTTP(srv, 2*time.Second)
		fmt.Fprintln(os.Stderr, "dvmserved: bye")
	case <-hard:
		lg.Statusf("second signal: aborting now (checkpointed cells are durable)")
		os.Exit(130)
	}
}

// shutdownHTTP drains the daemon's HTTP server with a timeout.
func shutdownHTTP(srv *http.Server, d time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	srv.Shutdown(ctx)
}
