// Benchmarks regenerating each table and figure of the paper's evaluation
// (DESIGN.md maps every artifact to its bench). Benchmarks run at the tiny
// profile so `go test -bench=.` finishes in minutes; cmd/dvmrepro
// regenerates the same artifacts at the larger profiles.
package dvm_test

import (
	"sync"
	"testing"

	dvm "github.com/dvm-sim/dvm"
)

// prepared caches the benchmark workload across benchmarks.
var (
	prepOnce sync.Once
	prepWL   *dvm.Prepared
	prepCF   *dvm.Prepared
	prepErr  error
)

// benchWorkloads prepares (once) and returns both benchmark workloads.
// Every benchmark goes through here and fatals on prepErr before touching
// either prepared workload: preparation stops at the first failure, so a
// failed NF generation after a successful Wiki one would otherwise leave
// prepCF nil while prepWL looks usable.
func benchWorkloads(b *testing.B) (wl, cf *dvm.Prepared) {
	b.Helper()
	prepOnce.Do(func() {
		d, err := dvm.DatasetByName("Wiki")
		if err != nil {
			prepErr = err
			return
		}
		prepWL, prepErr = dvm.Prepare(dvm.Workload{
			Algorithm: "PageRank", Dataset: d,
			Scale: dvm.ProfileTiny.Scale, PageRankIters: 2, Seed: 42,
		})
		if prepErr != nil {
			return
		}
		nf, err := dvm.DatasetByName("NF")
		if err != nil {
			prepErr = err
			return
		}
		prepCF, prepErr = dvm.Prepare(dvm.Workload{
			Algorithm: "CF", Dataset: nf, Scale: dvm.ProfileTiny.Scale, Seed: 42,
		})
	})
	if prepErr != nil {
		b.Fatal(prepErr)
	}
	return prepWL, prepCF
}

func benchWorkload(b *testing.B) *dvm.Prepared {
	b.Helper()
	wl, _ := benchWorkloads(b)
	return wl
}

// BenchmarkFigure2TLBMissRates regenerates one Figure 2 bar pair (4 KB and
// 2 MB TLB miss rates) per iteration.
func BenchmarkFigure2TLBMissRates(b *testing.B) {
	p := benchWorkload(b)
	cfg := dvm.ProfileTiny.SystemConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := dvm.Figure2(p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if row.MissRate4K <= 0 {
			b.Fatal("no misses measured")
		}
	}
}

// BenchmarkTable1PageTableSizes regenerates one Table 1 row (standard vs
// Permission Entry page-table footprint) per iteration.
func BenchmarkTable1PageTableSizes(b *testing.B) {
	p := benchWorkload(b)
	cfg := dvm.ProfileTiny.SystemConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := dvm.Table1(p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if row.PEBytes >= row.StdBytes {
			b.Fatalf("PEs did not shrink the table: %d vs %d", row.PEBytes, row.StdBytes)
		}
	}
}

// BenchmarkTable3DatasetGeneration regenerates the scaled Table 3 inputs.
func BenchmarkTable3DatasetGeneration(b *testing.B) {
	d, err := dvm.DatasetByName("FR")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := d.Generate(dvm.ProfileTiny.Scale, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8ExecutionTime regenerates one Figure 8 cell (all seven
// modes, normalized to Ideal) per iteration.
func BenchmarkFigure8ExecutionTime(b *testing.B) {
	p := benchWorkload(b)
	cfg := dvm.ProfileTiny.SystemConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell, err := dvm.Figure8(p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if cell.Normalized[dvm.ModeConv4K] <= cell.Normalized[dvm.ModeDVMPEPlus] {
			b.Fatal("figure 8 ordering violated")
		}
	}
}

// BenchmarkFigure9Energy regenerates one Figure 9 cell (MMU dynamic energy
// normalized to the 4K baseline) per iteration.
func BenchmarkFigure9Energy(b *testing.B) {
	p := benchWorkload(b)
	cfg := dvm.ProfileTiny.SystemConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell, err := dvm.Figure8(p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		fig9, err := dvm.Figure9(cell)
		if err != nil {
			b.Fatal(err)
		}
		if fig9.Normalized[dvm.ModeDVMPE] >= 1 {
			b.Fatal("DVM-PE did not save MMU energy")
		}
	}
}

// BenchmarkFigure8CF runs the collaborative-filtering column of Figure 8.
func BenchmarkFigure8CF(b *testing.B) {
	_, cf := benchWorkloads(b)
	cfg := dvm.ProfileTiny.SystemConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dvm.Figure8(cf, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4IdentityMapping runs one shbench cell (experiment 2 at
// 1 GB) per iteration.
func BenchmarkTable4IdentityMapping(b *testing.B) {
	exp := dvm.ShbenchExperiments[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := dvm.ShbenchRun(exp, 1<<30)
		if err != nil {
			b.Fatal(err)
		}
		if r.Percent < 80 {
			b.Fatalf("identity fraction %.1f%% implausibly low", r.Percent)
		}
	}
}

// BenchmarkFigure10CDVM runs one Figure 10 workload (mcf, shortened trace)
// per iteration.
func BenchmarkFigure10CDVM(b *testing.B) {
	spec, err := dvm.CPUWorkloadByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	spec.Accesses = 300_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := dvm.CPURun(spec, dvm.CPUConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if r.Overhead[dvm.SchemeCDVM] >= r.Overhead[dvm.Scheme4K] {
			b.Fatal("cDVM did not beat 4K")
		}
	}
}

// BenchmarkModes runs the benchmark workload under each mode separately so
// per-mode simulation cost is visible.
func BenchmarkModes(b *testing.B) {
	p := benchWorkload(b)
	cfg := dvm.ProfileTiny.SystemConfig()
	for _, mode := range dvm.AllModes {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(mode, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPEFanout sweeps the Permission Entry field count
// (DESIGN.md ablation 1).
func BenchmarkAblationPEFanout(b *testing.B) {
	p := benchWorkload(b)
	for _, fields := range []int{4, 16, 64} {
		b.Run(map[int]string{4: "4-fields", 16: "16-fields", 64: "64-fields"}[fields], func(b *testing.B) {
			cfg := dvm.ProfileTiny.SystemConfig()
			cfg.PEFields = fields
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(dvm.ModeDVMPE, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAVCSize sweeps the AVC capacity (DESIGN.md ablation 5).
func BenchmarkAblationAVCSize(b *testing.B) {
	p := benchWorkload(b)
	for _, capBytes := range []int{256, 1024, 4096} {
		b.Run(map[int]string{256: "256B", 1024: "1KB", 4096: "4KB"}[capBytes], func(b *testing.B) {
			cfg := dvm.ProfileTiny.SystemConfig()
			cfg.AVC.CapacityBytes = capBytes
			cfg.AVC.MinLevel = 1
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(dvm.ModeDVMPE, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAVCCachesL1 toggles whether the walker cache may hold
// leaf lines — the AVC-vs-PWC distinction (DESIGN.md ablation 2).
func BenchmarkAblationAVCCachesL1(b *testing.B) {
	p := benchWorkload(b)
	for minLevel, name := range map[int]string{1: "avc-all-levels", 2: "pwc-skips-leaves"} {
		b.Run(name, func(b *testing.B) {
			cfg := dvm.ProfileTiny.SystemConfig()
			cfg.AVC.MinLevel = minLevel
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(dvm.ModeDVMPE, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPreload contrasts DVM-PE and DVM-PE+ (DESIGN.md
// ablation 3).
func BenchmarkAblationPreload(b *testing.B) {
	p := benchWorkload(b)
	cfg := dvm.ProfileTiny.SystemConfig()
	for _, mode := range []dvm.Mode{dvm.ModeDVMPE, dvm.ModeDVMPEPlus} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Run(mode, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVirtualization measures the §5 extension: one scheme sweep
// (nested-2D through full DVM) per iteration.
func BenchmarkVirtualization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var prev float64 = -1
		for j := len(dvm.VirtSchemes) - 1; j >= 0; j-- {
			r, err := dvm.VirtMeasure(dvm.VirtSchemes[j], dvm.VirtConfig{HeapBytes: 8 << 20}, 20_000, 7)
			if err != nil {
				b.Fatal(err)
			}
			if r.AvgCycles < prev {
				b.Fatal("virtualization ordering violated")
			}
			prev = r.AvgCycles
		}
	}
}

// BenchmarkPrepare measures workload preparation end-to-end: dataset
// generation (CSR construction), address-space layout and page-table
// population — the deterministic pre-simulation paths that PR 4 made
// budget-aware. Sequential here (no Workers budget); the parallel paths
// are pinned byte-identical to this one by the equivalence tests.
func BenchmarkPrepare(b *testing.B) {
	d, err := dvm.DatasetByName("Wiki")
	if err != nil {
		b.Fatal(err)
	}
	wl := dvm.Workload{
		Algorithm: "PageRank", Dataset: d,
		Scale: dvm.ProfileTiny.Scale, PageRankIters: 2, Seed: 42,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dvm.Prepare(wl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemsysAccess measures the memory controller's per-line service
// path (channel select, queueing, reservation) — the innermost call of
// every simulated memory reference.
func BenchmarkMemsysAccess(b *testing.B) {
	ctl, err := dvm.NewMemController(dvm.MemConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var now uint64
	for i := 0; i < b.N; i++ {
		now = ctl.Access(dvm.PA(uint64(i)<<6), now)
	}
}

// BenchmarkIdentityReestablish measures the §4.3.1 reclaim path: break an
// identity mapping, swap it out, fault back in and re-establish identity.
func BenchmarkIdentityReestablish(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := dvm.NewSystem(256 << 20)
		if err != nil {
			b.Fatal(err)
		}
		proc := sys.NewProcess(dvm.Policy{IdentityMapHeap: true})
		r, _, err := proc.Mmap(16<<20, dvm.ReadWrite)
		if err != nil {
			b.Fatal(err)
		}
		if err := proc.BreakIdentity(r); err != nil {
			b.Fatal(err)
		}
		if err := proc.SwapOut(r); err != nil {
			b.Fatal(err)
		}
		if _, err := proc.Touch(r.Start, dvm.Write); err != nil {
			b.Fatal(err)
		}
		ok, err := proc.ReestablishIdentity(r)
		if err != nil || !ok {
			b.Fatalf("reestablish: ok=%v err=%v", ok, err)
		}
	}
}
