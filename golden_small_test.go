package dvm_test

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"github.com/dvm-sim/dvm/internal/core"
	"github.com/dvm-sim/dvm/internal/obs"
	"github.com/dvm-sim/dvm/internal/report"
	"github.com/dvm-sim/dvm/internal/runner"
)

// TestGoldenSmallFastArtifacts regenerates the sub-second artifacts of the
// small profile (table3, table1, virt) and compares them byte-for-byte
// against testdata/golden_small_fast.txt — the exact stdout of
//
//	dvmrepro -profile small -only table3,table1,virt -j 1 -q
//
// The tiny golden covers every artifact; this one exists so the *small*
// profile — the first profile whose graphs are big enough to cross the
// two-phase engine's async threshold and the parallel CSR build's edge
// minimum — has a cheap byte-identity referee too. It runs the sweep
// twice: sequentially, and with a worker budget (Jobs 8) that engages
// parallel trace generation and parallel Prepare wherever thresholds
// allow. Both must reproduce the committed file exactly.
//
// Refresh (only when an intentional modeling change lands):
//
//	go run ./cmd/dvmrepro -profile small -only table3,table1,virt -j 1 -q > testdata/golden_small_fast.txt
func TestGoldenSmallFastArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("small-profile regeneration; skipped with -short")
	}
	want, err := os.ReadFile("testdata/golden_small_fast.txt")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := core.ProfileByName("small")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		jobs int
	}{
		{"sequential", 1},
		{"jobs8", 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := report.Options{
				Jobs:     tc.jobs,
				Workers:  runner.BudgetFor(tc.jobs),
				Metrics:  &obs.Collector{},
				Prepared: core.NewPreparedCache(),
			}
			var out bytes.Buffer
			steps := []struct {
				name string
				fn   func() error
			}{
				{"table3", func() error { return report.Table3(prof, &out, opts) }},
				{"table1", func() error { return report.Table1(prof, &out, opts) }},
				{"virt", func() error { return report.Virtualization(&out, opts) }},
			}
			for _, s := range steps {
				if err := s.fn(); err != nil {
					t.Fatalf("%s: %v", s.name, err)
				}
				fmt.Fprintln(&out)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Fatalf("small-profile fast artifacts diverged from testdata/golden_small_fast.txt "+
					"(got %d bytes, want %d); if a modeling change is intentional, refresh per the comment above",
					out.Len(), len(want))
			}
		})
	}
}
