// Package dvm is the public API of the DVM simulator — a full-system
// reproduction of "Devirtualizing Memory in Heterogeneous Systems"
// (Haria, Hill, Swift; ASPLOS 2018).
//
// DVM (Devirtualized Memory) combines the protection of virtual memory
// with the performance of direct physical access: the OS allocates memory
// so that virtual addresses equal physical addresses (identity mapping,
// VA==PA), and the IOMMU replaces page-granularity address translation
// with region-granularity Devirtualized Access Validation (DAV) backed by
// Permission Entries — page-table entries that hold sixteen per-region
// permission fields and collapse entire page-table subtrees — cached in a
// tiny Access Validation Cache. On reads, validation can be overlapped
// with a speculative preload of the identity address.
//
// The package re-exports the simulator's layers:
//
//   - System / Process / Policy: the OS model (buddy allocator, identity
//     mapping with demand-paging fallback, fork/CoW, page-table
//     construction).
//   - Mode and the IOMMU configurations: the seven memory-management
//     schemes of the paper's evaluation (conventional 4K/2M/1G paging,
//     DVM-BM, DVM-PE, DVM-PE+ and Ideal), plus two registered extra
//     designs from related work — SPARTA (partitioned translation) and
//     VBI (variable-size virtual blocks). New designs plug in through
//     the mmu backend registry (DESIGN.md §11).
//   - Program / Engine: the Graphicionado-style accelerator with its
//     vertex-programming abstraction (BFS, PageRank, SSSP, CF built in).
//   - Workload / Prepare / Profile: the experiment harness that
//     regenerates every table and figure of the paper (see cmd/dvmrepro
//     and EXPERIMENTS.md).
//
// Quick start (see examples/quickstart for the runnable version):
//
//	sys := dvm.NewSystem(1 << 30)
//	proc := sys.NewProcess(dvm.Policy{IdentityMapHeap: true})
//	r, identity, _ := proc.Mmap(1<<20, dvm.ReadWrite)
//	// identity == true, and every PA equals its VA.
package dvm

import (
	"github.com/dvm-sim/dvm/internal/accel"
	"github.com/dvm-sim/dvm/internal/addr"
	"github.com/dvm-sim/dvm/internal/core"
	"github.com/dvm-sim/dvm/internal/cpu"
	"github.com/dvm-sim/dvm/internal/graph"
	"github.com/dvm-sim/dvm/internal/memsys"
	"github.com/dvm-sim/dvm/internal/mmu"
	"github.com/dvm-sim/dvm/internal/osmodel"
	"github.com/dvm-sim/dvm/internal/pagetable"
	"github.com/dvm-sim/dvm/internal/shbench"
	"github.com/dvm-sim/dvm/internal/virt"
)

// Address-space primitives.
type (
	// VA is a virtual address; PA is a physical address. Under identity
	// mapping they are numerically equal.
	VA = addr.VA
	// PA is a physical address.
	PA = addr.PA
	// Perm is the paper's 2-bit permission encoding.
	Perm = addr.Perm
	// AccessKind is read / write / execute.
	AccessKind = addr.AccessKind
	// VRange is a virtual address range.
	VRange = addr.VRange
	// PRange is a physical address range.
	PRange = addr.PRange
)

// Permissions and access kinds.
const (
	NoPerm      = addr.NoPerm
	ReadOnly    = addr.ReadOnly
	ReadWrite   = addr.ReadWrite
	ReadExecute = addr.ReadExecute

	Read    = addr.Read
	Write   = addr.Write
	Execute = addr.Execute
)

// Page sizes.
const (
	PageSize4K = addr.PageSize4K
	PageSize2M = addr.PageSize2M
	PageSize1G = addr.PageSize1G
)

// OS model.
type (
	// System is a simulated machine: physical memory plus processes.
	System = osmodel.System
	// Process is a simulated address space with identity mapping.
	Process = osmodel.Process
	// Policy selects identity-mapping behaviour per process.
	Policy = osmodel.Policy
	// VMA is one mapped region of a process.
	VMA = osmodel.VMA
	// Malloc is the pooling user-level allocator (malloc over mmap).
	Malloc = osmodel.Malloc
	// Program describes an executable image for LoadProgram (cDVM).
	OSProgram = osmodel.Program
)

// NewSystem boots a simulated machine with the given physical memory size
// (a power of two in bytes).
func NewSystem(memBytes uint64) (*System, error) { return osmodel.NewSystem(memBytes) }

// MustNewSystem is NewSystem that panics on error.
func MustNewSystem(memBytes uint64) *System { return osmodel.MustNewSystem(memBytes) }

// NewMalloc creates a pooling allocator over the process.
func NewMalloc(p *Process) *Malloc { return osmodel.NewMalloc(p) }

// Page tables and MMU hardware.
type (
	// PageTable is the x86-64 radix table with Permission Entry support.
	PageTable = pagetable.Table
	// IOMMU validates/translates accelerator accesses per its Mode.
	IOMMU = mmu.IOMMU
	// IOMMUConfig assembles an IOMMU.
	IOMMUConfig = mmu.Config
	// PermBitmap is the DVM-BM flat permission bitmap.
	PermBitmap = mmu.PermBitmap
	// TLB is a translation lookaside buffer model.
	TLB = mmu.TLB
	// MemController is the DDR4-style timing model.
	MemController = memsys.Controller
	// MemConfig shapes the memory system.
	MemConfig = memsys.Config
)

// NewIOMMU creates an IOMMU over a page table (and bitmap for ModeDVMBM).
func NewIOMMU(cfg IOMMUConfig, table *PageTable, bm *PermBitmap) (*IOMMU, error) {
	return mmu.New(cfg, table, bm)
}

// NewPermBitmap creates an empty DVM-BM permission bitmap.
func NewPermBitmap() *PermBitmap { return mmu.NewPermBitmap() }

// NewMemController creates a memory controller; zero config fields default
// to the paper's 4-channel, 51.2 GB/s system.
func NewMemController(cfg MemConfig) (*MemController, error) { return memsys.NewController(cfg) }

// Memory-management modes (the paper's seven configurations plus the
// registered extra designs).
type Mode = core.Mode

// Modes, in the paper's presentation order (Ideal last), plus the extras.
const (
	ModeConv4K    = core.ModeConv4K
	ModeConv2M    = core.ModeConv2M
	ModeConv1G    = core.ModeConv1G
	ModeDVMBM     = core.ModeDVMBM
	ModeDVMPE     = core.ModeDVMPE
	ModeDVMPEPlus = core.ModeDVMPEPlus
	ModeIdeal     = core.ModeIdeal
	ModeSPARTA    = core.ModeSPARTA
	ModeVBI       = core.ModeVBI
)

// AllModes lists the paper's seven modes; the registry views expose the
// full set including extras and resolve CLI-style names.
var (
	AllModes        = core.AllModes
	RegisteredModes = core.RegisteredModes
	ExtraModes      = core.ExtraModes
	ModeNames       = core.ModeNames
	ModeByName      = core.ModeByName
)

// Accelerator.
type (
	// Program is Graphicionado's vertex-programming abstraction
	// (processEdge / reduce / apply).
	Program = accel.Program
	// Engine executes a Program with full timing through the IOMMU.
	Engine = accel.Engine
	// EngineConfig shapes the accelerator (PEs, MLP).
	EngineConfig = accel.Config
	// Layout is the heap placement of a workload's arrays.
	Layout = accel.Layout
	// RunStats is an accelerator run's outcome.
	RunStats = accel.RunStats
)

// Built-in vertex programs.
var (
	// BFS returns breadth-first search from a root vertex.
	BFS = accel.BFS
	// SSSP returns single-source shortest path from a root vertex.
	SSSP = accel.SSSP
	// PageRank returns PageRank bounded to the given iterations.
	PageRank = accel.PageRank
	// CF returns one collaborative-filtering sweep over a bipartite
	// rating graph.
	CF = accel.CF
)

// Trace record/replay: capture a workload's access stream once, re-price
// it under any MMU configuration.
type (
	// TraceRecord is one recorded accelerator access.
	TraceRecord = accel.TraceRecord
	// TraceWriter / TraceReader stream the compact binary trace format.
	TraceWriter = accel.TraceWriter
	TraceReader = accel.TraceReader
	// ReplayResult is the outcome of re-pricing a trace.
	ReplayResult = accel.ReplayResult
)

// Trace constructors and the replayer.
var (
	NewTraceWriter = accel.NewTraceWriter
	NewTraceReader = accel.NewTraceReader
	Replay         = accel.Replay
)

// BuildLayout allocates a workload's arrays in the process address space.
func BuildLayout(p *Process, g *Graph, propBytes uint64) (Layout, error) {
	return accel.BuildLayout(p, g, propBytes)
}

// NewEngine assembles an accelerator engine.
func NewEngine(cfg EngineConfig, g *Graph, prog Program, lay Layout, iommu *IOMMU, mem *MemController) (*Engine, error) {
	return accel.NewEngine(cfg, g, prog, lay, iommu, mem)
}

// Graphs.
type (
	// Graph is a CSR graph, optionally bipartite.
	Graph = graph.Graph
	// DatasetSpec is one entry of the paper's Table 3.
	DatasetSpec = graph.DatasetSpec
	// RMATConfig parameterizes the graph500 generator.
	RMATConfig = graph.RMATConfig
	// BipartiteConfig parameterizes rating-graph synthesis.
	BipartiteConfig = graph.BipartiteConfig
)

// GraphStats summarizes a graph's degree distribution.
type GraphStats = graph.Stats

// Graph constructors and the Table 3 registry.
var (
	GenerateRMAT      = graph.GenerateRMAT
	GenerateBipartite = graph.GenerateBipartite
	DefaultRMAT       = graph.DefaultRMAT
	Datasets          = graph.Datasets
	DatasetByName     = graph.DatasetByName
)

// Experiment harness.
type (
	// Workload is one cell of the evaluation matrix.
	Workload = core.Workload
	// Prepared is a generated workload ready to run under any mode.
	Prepared = core.Prepared
	// PreparedCache deduplicates Prepare calls across generators and
	// parallel workers (single-flight; results unchanged).
	PreparedCache = core.PreparedCache
	// SystemConfig is the simulated machine configuration.
	SystemConfig = core.SystemConfig
	// RunResult is one (workload, mode) outcome.
	RunResult = core.RunResult
	// Profile couples a dataset scale with scaled hardware.
	Profile = core.Profile
	// Figure8Cell / Figure9Cell / Figure2Row / Table1Row are the
	// regenerated paper artifacts.
	Figure8Cell = core.Figure8Cell
	Figure9Cell = core.Figure9Cell
	Figure2Row  = core.Figure2Row
	Table1Row   = core.Table1Row
)

// Harness entry points.
var (
	Prepare          = core.Prepare
	NewPreparedCache = core.NewPreparedCache
	ProfileByName    = core.ProfileByName
	Figure2          = core.Figure2
	Table1           = core.Table1
	Figure8          = core.Figure8
	Figure9          = core.Figure9
)

// Predefined profiles.
var (
	ProfileTiny   = core.ProfileTiny
	ProfileSmall  = core.ProfileSmall
	ProfileMedium = core.ProfileMedium
	ProfilePaper  = core.ProfilePaper
)

// CPU-side cDVM (Section 7).
type (
	// CPUWorkload is one Figure 10 benchmark.
	CPUWorkload = cpu.WorkloadSpec
	// CPUConfig is the CPU MMU configuration.
	CPUConfig = cpu.Config
	// CPUResult is one Figure 10 bar group.
	CPUResult = cpu.Result
	// CPUScheme is 4K / THP / cDVM.
	CPUScheme = cpu.Scheme
)

// CPU schemes.
const (
	Scheme4K   = cpu.Scheme4K
	SchemeTHP  = cpu.SchemeTHP
	SchemeCDVM = cpu.SchemeCDVM
)

// CPU harness.
var (
	CPUWorkloads      = cpu.Workloads
	CPURun            = cpu.Run
	CPUWorkloadByName = cpu.WorkloadByName
)

// Fragmentation (Table 4) harness.
type (
	// ShbenchExperiment is one Table 4 configuration.
	ShbenchExperiment = shbench.Experiment
	// ShbenchResult is one Table 4 cell.
	ShbenchResult = shbench.Result
)

// Shbench harness.
var (
	ShbenchExperiments = shbench.Experiments
	ShbenchMemSizes    = shbench.MemorySizes
	ShbenchRun         = shbench.Run
)

// Virtualized DVM (paper §5 extension).
type (
	// VirtScheme is one of the nested-translation schemes.
	VirtScheme = virt.Scheme
	// VirtMachine composes a guest and a nested page table.
	VirtMachine = virt.Machine
	// VirtConfig shapes the virtual machine model.
	VirtConfig = virt.Config
	// VirtResult is one scheme's measured translation cost.
	VirtResult = virt.Result
)

// Virtualized schemes.
const (
	VirtNested2D = virt.SchemeNested2D
	VirtGuestDVM = virt.SchemeGuestDVM
	VirtHostDVM  = virt.SchemeHostDVM
	VirtFullDVM  = virt.SchemeFullDVM
)

// Virtualization harness.
var (
	NewVirtMachine = virt.NewMachine
	VirtMeasure    = virt.Measure
	VirtSchemes    = virt.AllSchemes
)
