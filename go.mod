module github.com/dvm-sim/dvm

go 1.22
