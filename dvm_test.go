package dvm_test

import (
	"testing"

	dvm "github.com/dvm-sim/dvm"
)

// TestFacadeQuickstart exercises the README quick-start path through the
// public API only.
func TestFacadeQuickstart(t *testing.T) {
	sys, err := dvm.NewSystem(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	proc := sys.NewProcess(dvm.Policy{IdentityMapHeap: true})
	r, identity, err := proc.Mmap(4<<20, dvm.ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	if !identity {
		t.Fatal("heap not identity mapped")
	}
	pa, err := proc.Touch(r.Start+123, dvm.Read)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(pa) != uint64(r.Start)+123 {
		t.Fatalf("VA %#x != PA %#x", uint64(r.Start)+123, uint64(pa))
	}
	table, err := proc.BuildCanonicalTable(true)
	if err != nil {
		t.Fatal(err)
	}
	iommu, err := dvm.NewIOMMU(dvm.IOMMUConfig{Mode: dvm.ModeDVMPEPlus}, table, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan := iommu.Translate(r.Start, dvm.Read)
	if plan.Fault || plan.PA != dvm.PA(r.Start) || !plan.OverlapData {
		t.Fatalf("DAV plan: %+v", plan)
	}
}

// TestFacadeAcceleratorRun drives the accelerator through the facade.
func TestFacadeAcceleratorRun(t *testing.T) {
	g, err := dvm.GenerateRMAT(dvm.DefaultRMAT(8, 3))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := dvm.NewSystem(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	proc := sys.NewProcess(dvm.Policy{IdentityMapHeap: true})
	prog := dvm.BFS(0)
	lay, err := dvm.BuildLayout(proc, g, prog.PropBytes)
	if err != nil {
		t.Fatal(err)
	}
	table, err := proc.BuildCanonicalTable(true)
	if err != nil {
		t.Fatal(err)
	}
	iommu, err := dvm.NewIOMMU(dvm.IOMMUConfig{Mode: dvm.ModeDVMPE}, table, nil)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := dvm.NewMemController(dvm.MemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := dvm.NewEngine(dvm.EngineConfig{}, g, prog, lay, iommu, mem)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cycles == 0 || stats.Faults != 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if eng.Props()[0] != 0 {
		t.Fatal("BFS root level wrong")
	}
}

// TestFacadeHarness runs one Figure 8 cell end to end at tiny scale.
func TestFacadeHarness(t *testing.T) {
	d, err := dvm.DatasetByName("FR")
	if err != nil {
		t.Fatal(err)
	}
	p, err := dvm.Prepare(dvm.Workload{Algorithm: "BFS", Dataset: d, Scale: dvm.ProfileTiny.Scale, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cell, err := dvm.Figure8(p, dvm.ProfileTiny.SystemConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cell.Normalized[dvm.ModeIdeal] != 1 {
		t.Fatalf("normalization broken: %v", cell.Normalized)
	}
	if len(cell.Results) != len(dvm.AllModes) {
		t.Fatalf("missing modes: %d", len(cell.Results))
	}
}

// TestFacadeProfiles checks the profile registry via the facade.
func TestFacadeProfiles(t *testing.T) {
	for _, name := range []string{"tiny", "small", "medium", "paper"} {
		p, err := dvm.ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Scale <= 0 || p.Scale > 1 || p.TLBEntries < 1 {
			t.Fatalf("profile %s malformed: %+v", name, p)
		}
	}
	if dvm.ProfilePaper.Scale != 1 || dvm.ProfilePaper.TLBEntries != 128 {
		t.Fatalf("paper profile must match Table 2: %+v", dvm.ProfilePaper)
	}
}
