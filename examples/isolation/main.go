// Isolation: demonstrate that DVM preserves memory protection even though
// applications address physical memory directly. Two processes allocate
// identity-mapped heaps; an accelerator working for process B attempts to
// read process A's data, and Devirtualized Access Validation rejects it —
// "just because applications can address all of PM does not give them
// permissions to access it" (paper Section 5).
package main

import (
	"fmt"
	"log"

	dvm "github.com/dvm-sim/dvm"
)

func main() {
	sys, err := dvm.NewSystem(1 << 30)
	if err != nil {
		log.Fatal(err)
	}

	// Process A holds a secret buffer; process B is the accelerator's
	// client. Both use identity mapping, so both heaps live at their
	// physical addresses.
	procA := sys.NewProcess(dvm.Policy{IdentityMapHeap: true, Seed: 1})
	procB := sys.NewProcess(dvm.Policy{IdentityMapHeap: true, Seed: 2})

	secret, identA, err := procA.Mmap(1<<20, dvm.ReadWrite)
	if err != nil {
		log.Fatal(err)
	}
	mine, identB, err := procB.Mmap(1<<20, dvm.ReadWrite)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("process A secret at %v (identity %v)\n", secret, identA)
	fmt.Printf("process B buffer at %v (identity %v)\n", mine, identB)

	// The IOMMU validates accelerator accesses against the *requesting
	// process's* page table. B's table has Permission Entries only for
	// B's allocations.
	tableB, err := procB.BuildCanonicalTable(true)
	if err != nil {
		log.Fatal(err)
	}
	iommu, err := dvm.NewIOMMU(dvm.IOMMUConfig{Mode: dvm.ModeDVMPEPlus}, tableB, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Legitimate access: B's own buffer validates and proceeds at full
	// speed (identity preload).
	ok := iommu.Translate(mine.Start, dvm.Read)
	fmt.Printf("\nB reads its own buffer:   fault=%v PA=%#x preload=%v\n", ok.Fault, uint64(ok.PA), ok.OverlapData)

	// Malicious access: the secret's address is a perfectly valid
	// physical address — B can *name* it, but DAV finds no permission
	// in B's table and raises an exception on the host CPU.
	evil := iommu.Translate(secret.Start, dvm.Read)
	fmt.Printf("B reads A's secret:       fault=%v (exception raised on host)\n", evil.Fault)

	// Write-protection within a process is enforced the same way.
	roBuf, _, err := procB.Mmap(1<<20, dvm.ReadOnly)
	if err != nil {
		log.Fatal(err)
	}
	tableB2, err := procB.BuildCanonicalTable(true)
	if err != nil {
		log.Fatal(err)
	}
	iommu2, err := dvm.NewIOMMU(dvm.IOMMUConfig{Mode: dvm.ModeDVMPEPlus}, tableB2, nil)
	if err != nil {
		log.Fatal(err)
	}
	w := iommu2.Translate(roBuf.Start, dvm.Write)
	fmt.Printf("B writes read-only data:  fault=%v\n", w.Fault)

	if c := iommu.Counters(); c.Faults != 1 {
		log.Fatalf("expected exactly one fault, saw %d", c.Faults)
	}
	fmt.Println("\nisolation holds: direct physical addressing, conventional protection")
}
