// Cpucdvm: estimate CPU-side VM overheads for a custom workload under
// conventional 4 KB paging, transparent huge pages and cDVM (the paper's
// Section 7), using the public API.
package main

import (
	"fmt"
	"log"

	dvm "github.com/dvm-sim/dvm"
)

func main() {
	// A synthetic pointer-chasing workload: 768 MB footprint, 2% of
	// accesses uniformly random, the rest streaming, with a 4 MB hot
	// set absorbing a third of the random traffic.
	spec := dvm.CPUWorkload{
		Name:            "custom",
		Source:          "example",
		Footprint:       768 << 20,
		RandFrac:        0.02,
		HotFrac:         0.33,
		HotBytes:        4 << 20,
		Accesses:        1_000_000,
		CyclesPerAccess: 5,
		Seed:            7,
	}
	r, err := dvm.CPURun(spec, dvm.CPUConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: footprint %d MB, %d accesses\n\n", spec.Name, spec.Footprint>>20, spec.Accesses)
	for _, s := range []dvm.CPUScheme{dvm.Scheme4K, dvm.SchemeTHP, dvm.SchemeCDVM} {
		fmt.Printf("%-5s VM overhead %6.2f%%  (TLB-hierarchy miss rate %.1f%%, %d walk cycles)\n",
			s, 100*r.Overhead[s], 100*r.L2MissRate[s], r.WalkCycles[s])
	}

	fmt.Println("\nFigure 10 workloads, for comparison:")
	for _, w := range dvm.CPUWorkloads {
		res, err := dvm.CPURun(w, dvm.CPUConfig{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s 4K %6.1f%%   THP %5.1f%%   cDVM %4.1f%%\n",
			w.Name, 100*res.Overhead[dvm.Scheme4K], 100*res.Overhead[dvm.SchemeTHP], 100*res.Overhead[dvm.SchemeCDVM])
	}
}
