// Quickstart: boot a simulated machine, identity-map a heap allocation,
// build the Permission Entry page table and validate accesses through the
// IOMMU — the core DVM mechanism in ~60 lines.
package main

import (
	"fmt"
	"log"

	dvm "github.com/dvm-sim/dvm"
)

func main() {
	// A machine with 1 GB of physical memory.
	sys, err := dvm.NewSystem(1 << 30)
	if err != nil {
		log.Fatal(err)
	}

	// A process whose heap allocations are identity mapped (VA == PA).
	proc := sys.NewProcess(dvm.Policy{IdentityMapHeap: true})

	// Allocate 8 MB. With identity mapping the returned virtual range is
	// also the physical range.
	r, identity, err := proc.Mmap(8<<20, dvm.ReadWrite)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated %v, identity mapped: %v\n", r, identity)

	pa, err := proc.Touch(r.Start+0x1234, dvm.Read)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VA %#x is backed by PA %#x (equal: %v)\n",
		uint64(r.Start)+0x1234, uint64(pa), uint64(pa) == uint64(r.Start)+0x1234)

	// Build the compact page table: identity regions fold into
	// Permission Entries, deleting the leaf level entirely.
	std, err := proc.BuildCanonicalTable(false)
	if err != nil {
		log.Fatal(err)
	}
	pe, err := proc.BuildCanonicalTable(true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("page table: %d B conventional -> %d B with Permission Entries\n",
		std.SizeStats().Bytes, pe.SizeStats().Bytes)

	// An IOMMU in DVM-PE+ mode performs Devirtualized Access Validation:
	// most accesses validate from the Access Validation Cache and read
	// directly at their own (identity) address, with the data preload
	// overlapped with validation.
	iommu, err := dvm.NewIOMMU(dvm.IOMMUConfig{Mode: dvm.ModeDVMPEPlus}, pe, nil)
	if err != nil {
		log.Fatal(err)
	}
	plan := iommu.Translate(r.Start+0x1234, dvm.Read)
	fmt.Printf("DAV: PA=%#x fault=%v probes=%d walk-memory-refs=%d preload-overlap=%v\n",
		uint64(plan.PA), plan.Fault, plan.ProbeCycles, len(plan.MemRefs), plan.OverlapData)

	// Protection still holds: writes to read-only memory fault.
	ro, _, err := proc.Mmap(1<<20, dvm.ReadOnly)
	if err != nil {
		log.Fatal(err)
	}
	pe2, err := proc.BuildCanonicalTable(true)
	if err != nil {
		log.Fatal(err)
	}
	iommu2, err := dvm.NewIOMMU(dvm.IOMMUConfig{Mode: dvm.ModeDVMPEPlus}, pe2, nil)
	if err != nil {
		log.Fatal(err)
	}
	w := iommu2.Translate(ro.Start, dvm.Write)
	fmt.Printf("write to read-only region faults: %v\n", w.Fault)
}
