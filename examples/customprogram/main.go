// Customprogram: write a new graph algorithm against the accelerator's
// vertex-programming API (processEdge / reduce / apply) — here, connected
// components by label propagation — and run it under DVM-PE+ with a
// functional cross-check against a plain CPU implementation.
package main

import (
	"fmt"
	"log"
	"math"

	dvm "github.com/dvm-sim/dvm"
)

// components is the custom vertex program: every vertex starts with its
// own id as its label; edges propagate the smaller label; a vertex whose
// label shrinks re-activates. At convergence, vertices share a label iff
// they are in the same (weakly, via out-edges) connected component.
func components() dvm.Program {
	return dvm.Program{
		Name:           "Components",
		PropBytes:      8,
		InitProp:       func(v int, g *dvm.Graph) float64 { return float64(v) },
		ReduceIdentity: math.MaxFloat64,
		ProcessEdge:    func(w float32, srcProp float64) float64 { return srcProp },
		Reduce:         math.Min,
		Apply: func(old, temp float64, v int, g *dvm.Graph) (float64, bool) {
			if temp < old {
				return temp, true
			}
			return old, false
		},
		InitialFrontier: func(g *dvm.Graph) []int32 {
			f := make([]int32, g.V)
			for i := range f {
				f[i] = int32(i)
			}
			return f
		},
	}
}

func main() {
	g, err := dvm.GenerateRMAT(dvm.DefaultRMAT(12, 99))
	if err != nil {
		log.Fatal(err)
	}

	// Wire the full DVM stack.
	sys, err := dvm.NewSystem(1 << 30)
	if err != nil {
		log.Fatal(err)
	}
	proc := sys.NewProcess(dvm.Policy{IdentityMapHeap: true})
	prog := components()
	lay, err := dvm.BuildLayout(proc, g, prog.PropBytes)
	if err != nil {
		log.Fatal(err)
	}
	table, err := proc.BuildCanonicalTable(true)
	if err != nil {
		log.Fatal(err)
	}
	iommu, err := dvm.NewIOMMU(dvm.IOMMUConfig{Mode: dvm.ModeDVMPEPlus}, table, nil)
	if err != nil {
		log.Fatal(err)
	}
	mem, err := dvm.NewMemController(dvm.MemConfig{})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := dvm.NewEngine(dvm.EngineConfig{}, g, prog, lay, iommu, mem)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Cross-check against a straightforward CPU label propagation.
	want := referenceComponents(g)
	for v, got := range eng.Props() {
		if got != want[v] {
			log.Fatalf("vertex %d: label %v, want %v", v, got, want[v])
		}
	}

	labels := map[float64]int{}
	for _, l := range eng.Props() {
		labels[l]++
	}
	largest := 0
	for _, n := range labels {
		if n > largest {
			largest = n
		}
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.V, g.E())
	fmt.Printf("components: %d (largest has %d vertices)\n", len(labels), largest)
	fmt.Printf("accelerator: %d iterations, %d cycles, %d memory accesses, result verified\n",
		stats.Iterations, stats.Cycles, stats.Accesses)
	c := iommu.Counters()
	fmt.Printf("DAV: %d identity validations, %d squashed preloads, %d faults\n",
		c.DAVIdentity, c.SquashedPreloads, c.Faults)
}

// referenceComponents runs label propagation to a fixed point on the CPU.
func referenceComponents(g *dvm.Graph) []float64 {
	label := make([]float64, g.V)
	for v := range label {
		label[v] = float64(v)
	}
	for {
		changed := false
		g.Edges(func(src, dst int, w float32) bool {
			if label[src] < label[dst] {
				label[dst] = label[src]
				changed = true
			}
			return true
		})
		if !changed {
			return label
		}
	}
}
