// Graphaccel: run BFS on an R-MAT graph with the Graphicionado-style
// accelerator under several memory-management schemes and compare their
// execution times — a single cell of the paper's Figure 8, driven through
// the public API.
package main

import (
	"fmt"
	"log"

	dvm "github.com/dvm-sim/dvm"
)

func main() {
	// A graph500 R-MAT graph: 2^14 vertices, 16 edges per vertex.
	g, err := dvm.GenerateRMAT(dvm.DefaultRMAT(14, 42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.V, g.E())

	prog := dvm.BFS(0)
	var baseline uint64
	fmt.Printf("%-12s %12s %10s %s\n", "mode", "cycles", "vs ideal", "notes")
	for _, mode := range []dvm.Mode{dvm.ModeIdeal, dvm.ModeDVMPEPlus, dvm.ModeDVMPE, dvm.ModeDVMBM, dvm.ModeConv4K} {
		stats, notes, err := run(g, prog, mode)
		if err != nil {
			log.Fatal(err)
		}
		if mode == dvm.ModeIdeal {
			baseline = stats.Cycles
		}
		fmt.Printf("%-12s %12d %9.3fx %s\n", mode, stats.Cycles, float64(stats.Cycles)/float64(baseline), notes)
	}
}

// run wires a fresh machine for one mode and executes the program.
func run(g *dvm.Graph, prog dvm.Program, mode dvm.Mode) (dvm.RunStats, string, error) {
	sys, err := dvm.NewSystem(1 << 30)
	if err != nil {
		return dvm.RunStats{}, "", err
	}
	proc := sys.NewProcess(dvm.Policy{IdentityMapHeap: true, Seed: 1})
	lay, err := dvm.BuildLayout(proc, g, prog.PropBytes)
	if err != nil {
		return dvm.RunStats{}, "", err
	}

	var table *dvm.PageTable
	var bm *dvm.PermBitmap
	switch mode {
	case dvm.ModeIdeal:
		// Direct physical access: no table at all.
	case dvm.ModeConv2M, dvm.ModeConv1G:
		if table, err = proc.BuildHugeTable(mode.PageSize()); err != nil {
			return dvm.RunStats{}, "", err
		}
	case dvm.ModeDVMBM:
		if table, err = proc.BuildCanonicalTable(false); err != nil {
			return dvm.RunStats{}, "", err
		}
		bm = dvm.NewPermBitmap()
		proc.ForEachIdentityPage(bm.Set)
	default:
		if table, err = proc.BuildCanonicalTable(mode.UsesPE()); err != nil {
			return dvm.RunStats{}, "", err
		}
	}

	// An 8-entry TLB scaled to this small graph (DESIGN.md §6).
	iommu, err := dvm.NewIOMMU(dvm.IOMMUConfig{Mode: mode, TLBEntries: 8}, table, bm)
	if err != nil {
		return dvm.RunStats{}, "", err
	}
	mem, err := dvm.NewMemController(dvm.MemConfig{})
	if err != nil {
		return dvm.RunStats{}, "", err
	}
	eng, err := dvm.NewEngine(dvm.EngineConfig{}, g, prog, lay, iommu, mem)
	if err != nil {
		return dvm.RunStats{}, "", err
	}
	stats, err := eng.Run()
	if err != nil {
		return dvm.RunStats{}, "", err
	}

	notes := ""
	if c := iommu.Counters(); c.DAVIdentity > 0 {
		notes = fmt.Sprintf("%d identity validations, %d walk refs", c.DAVIdentity, c.WalkMemRefs)
	} else if tlb := iommu.TLB(); tlb != nil {
		notes = fmt.Sprintf("TLB miss %.1f%%", 100*tlb.MissRate())
	}
	return stats, notes, nil
}
