package dvm_test

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"github.com/dvm-sim/dvm/internal/core"
	"github.com/dvm-sim/dvm/internal/obs"
	"github.com/dvm-sim/dvm/internal/report"
)

// TestGoldenTinyProfile regenerates every paper artifact at the tiny
// profile and compares the rendered output byte-for-byte against
// testdata/golden_tiny.txt — the exact stdout of
//
//	dvmrepro -profile tiny -j 1
//
// This is the referee for every performance change: strength-reduced
// arithmetic, the scheduler heap, shared page tables and the map-free
// allocator must all leave the simulated behaviour — and therefore every
// rendered digit — untouched, at every -j.
//
// Refresh (only when an intentional modeling change lands):
//
//	go run ./cmd/dvmrepro -profile tiny -j 1 -q > testdata/golden_tiny.txt
func TestGoldenTinyProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("full tiny-profile regeneration; skipped with -short")
	}
	want, err := os.ReadFile("testdata/golden_tiny.txt")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := core.ProfileByName("tiny")
	if err != nil {
		t.Fatal(err)
	}
	// Jobs: 0 fans cells out one per CPU; the rendered bytes must still
	// match the sequential (-j 1) golden file exactly.
	opts := report.Options{Jobs: 0, Metrics: &obs.Collector{}, Prepared: core.NewPreparedCache()}
	var out bytes.Buffer
	// report.Sweep is the single rendering path cmd/dvmrepro and the
	// dvmserved job executor share: artifact order and the blank line
	// after each table are its contract, so the golden file pins both
	// front ends at once.
	if err := report.Sweep(prof, &out, opts, nil, nil); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("tiny-profile output diverged from testdata/golden_tiny.txt (got %d bytes, want %d); "+
			"if a modeling change is intentional, refresh the golden file per the comment above",
			out.Len(), len(want))
	}
}

// TestGoldenTinyExtendedModes pins the registry-driven extra columns:
// the Figure 8/9 matrix with every registered mode (paper set + SPARTA +
// VBI) must match testdata/golden_tiny_extended.txt byte-for-byte — the
// exact stdout of
//
//	dvmrepro -profile tiny -j 1 -q -modes extended -only fig8
//
// at both -j 1 and a fanned-out -j 8 (parallel cells must not reorder or
// change a digit). The seven paper columns inside this table are also
// implicitly pinned against the main golden: a backend-registry change
// that altered them would diverge both files.
//
// Refresh (only when an intentional modeling change lands):
//
//	go run ./cmd/dvmrepro -profile tiny -j 1 -q -modes extended -only fig8 > testdata/golden_tiny_extended.txt
func TestGoldenTinyExtendedModes(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny-profile regeneration; skipped with -short")
	}
	want, err := os.ReadFile("testdata/golden_tiny_extended.txt")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := core.ProfileByName("tiny")
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{1, 8} {
		opts := report.Options{
			Jobs:     jobs,
			Metrics:  &obs.Collector{},
			Prepared: core.NewPreparedCache(),
			Modes:    core.RegisteredModes(),
		}
		var out bytes.Buffer
		if err := report.Figure8And9(prof, &out, opts); err != nil {
			t.Fatalf("-j %d: %v", jobs, err)
		}
		fmt.Fprintln(&out) // dvmrepro prints a blank line after each artifact
		if !bytes.Equal(out.Bytes(), want) {
			t.Fatalf("-j %d: extended fig8/9 diverged from testdata/golden_tiny_extended.txt (got %d bytes, want %d); "+
				"if a modeling change is intentional, refresh per the comment above",
				jobs, out.Len(), len(want))
		}
	}
}
